(* Golden regression corpus: expected per-circuit totals for the paper's
   benchmark suite, checked in as test/golden_suite.json and diffed against
   a live [Suite.estimate_all] run with per-component tolerances.

   The fixture pins the whole observable estimate — subthreshold, gate and
   BTBT components of both the loading-aware and the baseline totals plus
   the loading shift — so any change to device models, characterization,
   table interpolation or the estimator sum order shows up as a diff here
   even when the relative shift happens to stay put. The per-circuit
   sigma_* fields additionally pin the analytic variance propagation
   (loading-aware σ per component plus the inter/intra split of the total,
   under the paper's sigmas and each circuit's first sampled vector), so
   moment-engine changes are caught with the same resolution as the means.

   Regenerate (after an intentional model change) with:
     LEAKAGE_GOLDEN_WRITE=test/golden_suite.json dune exec test/test_golden.exe

   The regen path is itself under test: the byte-identity case below
   re-emits the fixture from the live run and diffs it against the checked
   in file, so a stale corpus or a silent format drift (fields dropped or
   reordered — the schema is append-only) fails before anyone needs the
   env var. *)

module Params = Leakage_device.Params
module Characterize = Leakage_core.Characterize
module Library = Leakage_core.Library
module Report = Leakage_spice.Leakage_report
module Sensitivity = Leakage_core.Sensitivity
module Variation = Leakage_device.Variation
module Netlist = Leakage_circuit.Netlist
module Logic = Leakage_circuit.Logic
module Rng = Leakage_numeric.Rng
module Suite = Leakage_benchmarks.Suite
module Trees = Leakage_benchmarks.Trees

let device = Params.d25
let temp = 300.0
let coarse_grid = { Characterize.max_current = 3.0e-6; points = 5 }
let lib = Library.create ~grid:coarse_grid ~device ~temp ()
let vectors = 2
let seed = 7
let fixture = "golden_suite.json"

(* the paper's suite plus a 16k-deep tapped chain: the depth stress case —
   a recursive cone walk would blow the stack here, and the gateway taps
   make it the canonical value-aware-pruning topology. Appended after
   [Suite.all] so the earlier circuits keep their exact RNG streams (the
   per-entry splits are drawn in order). *)
let entries =
  Suite.all
  @ [ { Suite.label = "chain16k";
        build = (fun () -> Trees.chain ~stages:16384 ~tap_every:64 ()) } ]

(* components can legitimately sit many orders of magnitude apart, so each
   is compared relatively; an exactly-zero golden value demands (near) zero *)
let tol = 1e-6

let rel a b = if b = 0.0 then Float.abs a else Float.abs (a -. b) /. Float.abs b

let runs = lazy (Suite.estimate_all ~entries ~vectors ~seed lib)

(* Analytic σ under each circuit's FIRST sampled vector: the stream split
   below mirrors [Suite.estimate_all] exactly (one split per entry, in
   suite order), so the vector pinned here is the first of the [vectors]
   the mean fixture averaged over. *)
let sigmas = Variation.paper_sigmas

let sigma_runs =
  lazy
    (let entries_a = Array.of_list entries in
     let rng = Rng.create seed in
     let streams = Array.map (fun _ -> Rng.split rng) entries_a in
     Array.mapi
       (fun i (e : Suite.entry) ->
         let netlist = e.Suite.build () in
         let width = Array.length (Netlist.inputs netlist) in
         let v = Logic.random_vector streams.(i) width in
         let _, _, res =
           Sensitivity.estimate_totals ~fallback_samples:0 ~sigmas lib netlist v
         in
         res)
       entries_a)

(* ------------------------------------------------------------- JSON emit *)

let emit oc (rows : Suite.run array) (sigs : Sensitivity.result array) =
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"fixture\": \"golden-suite\",\n";
  p "  \"vectors\": %d,\n" vectors;
  p "  \"seed\": %d,\n" seed;
  p "  \"grid_points\": %d,\n" coarse_grid.Characterize.points;
  p "  \"grid_max_current\": %.17g,\n" coarse_grid.Characterize.max_current;
  p "  \"circuits\": [\n";
  let n = Array.length rows in
  Array.iteri
    (fun i (r : Suite.run) ->
      let st = sigs.(i).Sensitivity.loaded in
      p "    {\n";
      p "      \"label\": \"%s\",\n" r.Suite.label;
      p "      \"gates\": %d,\n" r.Suite.gates;
      p "      \"loaded_isub\": %.17g,\n" r.Suite.loaded.Report.isub;
      p "      \"loaded_igate\": %.17g,\n" r.Suite.loaded.Report.igate;
      p "      \"loaded_ibtbt\": %.17g,\n" r.Suite.loaded.Report.ibtbt;
      p "      \"base_isub\": %.17g,\n" r.Suite.baseline.Report.isub;
      p "      \"base_igate\": %.17g,\n" r.Suite.baseline.Report.igate;
      p "      \"base_ibtbt\": %.17g,\n" r.Suite.baseline.Report.ibtbt;
      p "      \"shift_percent\": %.17g,\n" r.Suite.shift_percent;
      p "      \"sigma_isub\": %.17g,\n" st.Sensitivity.s_isub.Sensitivity.sigma;
      p "      \"sigma_igate\": %.17g,\n" st.Sensitivity.s_igate.Sensitivity.sigma;
      p "      \"sigma_ibtbt\": %.17g,\n" st.Sensitivity.s_ibtbt.Sensitivity.sigma;
      p "      \"sigma_total\": %.17g,\n" st.Sensitivity.s_total.Sensitivity.sigma;
      p "      \"sigma_total_inter\": %.17g,\n"
        st.Sensitivity.s_total.Sensitivity.sigma_inter;
      p "      \"sigma_total_intra\": %.17g\n"
        st.Sensitivity.s_total.Sensitivity.sigma_intra;
      p "    }%s\n" (if i = n - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n"

(* ------------------------------------------------------ minimal JSON read *)

let find_key chunk key =
  let needle = "\"" ^ key ^ "\":" in
  let nl = String.length needle and cl = String.length chunk in
  let rec scan i =
    if i + nl > cl then None
    else if String.sub chunk i nl = needle then Some (i + nl)
    else scan (i + 1)
  in
  scan 0

let scalar_after chunk pos =
  let cl = String.length chunk in
  let rec skip i = if i < cl && chunk.[i] = ' ' then skip (i + 1) else i in
  let start = skip pos in
  let rec stop i =
    if i >= cl then i
    else match chunk.[i] with ',' | '}' | ']' | '\n' -> i | _ -> stop (i + 1)
  in
  String.trim (String.sub chunk start (stop start - start))

let num_field chunk key =
  match find_key chunk key with
  | None -> failwith (Printf.sprintf "missing numeric field %S" key)
  | Some pos -> (
    match float_of_string_opt (scalar_after chunk pos) with
    | Some f -> f
    | None -> failwith (Printf.sprintf "field %S is not a number" key))

let str_field chunk key =
  match find_key chunk key with
  | None -> failwith (Printf.sprintf "missing string field %S" key)
  | Some pos ->
    let s = scalar_after chunk pos in
    if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"'
    then String.sub s 1 (String.length s - 2)
    else failwith (Printf.sprintf "field %S is not a string" key)

let circuit_chunks s =
  match find_key s "circuits" with
  | None -> failwith "missing \"circuits\" array"
  | Some pos ->
    let cl = String.length s in
    let chunks = ref [] in
    let depth = ref 0 and start = ref (-1) and i = ref pos in
    while !i < cl do
      (match s.[!i] with
       | '{' ->
         if !depth = 0 then start := !i;
         incr depth
       | '}' ->
         decr depth;
         if !depth = 0 && !start >= 0 then
           chunks := String.sub s !start (!i - !start + 1) :: !chunks
       | _ -> ());
      incr i
    done;
    List.rev !chunks

(* ----------------------------------------------------------------- tests *)

let read_fixture () =
  let ic = open_in fixture in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_close label what golden actual =
  if rel actual golden > tol then
    Alcotest.failf "%s: %s drifted from golden: %.17g vs %.17g (rel %.3e)"
      label what golden actual golden

let test_fixture_settings () =
  let s = read_fixture () in
  Alcotest.(check string) "fixture kind" "golden-suite" (str_field s "fixture");
  Alcotest.(check int) "vectors" vectors (int_of_float (num_field s "vectors"));
  Alcotest.(check int) "seed" seed (int_of_float (num_field s "seed"));
  Alcotest.(check int) "grid points" coarse_grid.Characterize.points
    (int_of_float (num_field s "grid_points"));
  Alcotest.(check (float 0.0)) "grid max current"
    coarse_grid.Characterize.max_current
    (num_field s "grid_max_current")

let test_suite_matches_golden () =
  let chunks = circuit_chunks (read_fixture ()) in
  let rows = Lazy.force runs in
  Alcotest.(check int) "circuit count" (List.length entries)
    (List.length chunks);
  Alcotest.(check int) "one run per fixture entry" (List.length chunks)
    (Array.length rows);
  List.iteri
    (fun i chunk ->
      let r = rows.(i) in
      let label = str_field chunk "label" in
      Alcotest.(check string) "label order" label r.Suite.label;
      Alcotest.(check int) (label ^ " gate count")
        (int_of_float (num_field chunk "gates")) r.Suite.gates;
      check_close label "loaded isub" (num_field chunk "loaded_isub")
        r.Suite.loaded.Report.isub;
      check_close label "loaded igate" (num_field chunk "loaded_igate")
        r.Suite.loaded.Report.igate;
      check_close label "loaded ibtbt" (num_field chunk "loaded_ibtbt")
        r.Suite.loaded.Report.ibtbt;
      check_close label "baseline isub" (num_field chunk "base_isub")
        r.Suite.baseline.Report.isub;
      check_close label "baseline igate" (num_field chunk "base_igate")
        r.Suite.baseline.Report.igate;
      check_close label "baseline ibtbt" (num_field chunk "base_ibtbt")
        r.Suite.baseline.Report.ibtbt;
      check_close label "shift percent" (num_field chunk "shift_percent")
        r.Suite.shift_percent)
    chunks

let test_sigmas_match_golden () =
  let chunks = circuit_chunks (read_fixture ()) in
  let sigs = Lazy.force sigma_runs in
  Alcotest.(check int) "one sigma result per fixture entry"
    (List.length chunks) (Array.length sigs);
  List.iteri
    (fun i chunk ->
      let st = sigs.(i).Sensitivity.loaded in
      let label = str_field chunk "label" in
      check_close label "sigma isub" (num_field chunk "sigma_isub")
        st.Sensitivity.s_isub.Sensitivity.sigma;
      check_close label "sigma igate" (num_field chunk "sigma_igate")
        st.Sensitivity.s_igate.Sensitivity.sigma;
      check_close label "sigma ibtbt" (num_field chunk "sigma_ibtbt")
        st.Sensitivity.s_ibtbt.Sensitivity.sigma;
      check_close label "sigma total" (num_field chunk "sigma_total")
        st.Sensitivity.s_total.Sensitivity.sigma;
      check_close label "sigma total inter" (num_field chunk "sigma_total_inter")
        st.Sensitivity.s_total.Sensitivity.sigma_inter;
      check_close label "sigma total intra" (num_field chunk "sigma_total_intra")
        st.Sensitivity.s_total.Sensitivity.sigma_intra)
    chunks

(* The LEAKAGE_GOLDEN_WRITE path, exercised without the env var: re-emit
   the fixture from the live run and demand byte-identity with the checked
   in file. Catches a stale corpus, a format drift, and any violation of
   the append-only schema in one comparison. *)
let test_regen_is_byte_identical () =
  let tmp = "golden_regen_tmp.json" in
  let oc = open_out tmp in
  emit oc (Lazy.force runs) (Lazy.force sigma_runs);
  close_out oc;
  let ic = open_in tmp in
  let fresh = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  Alcotest.(check string) "regenerated fixture" (read_fixture ()) fresh

let () =
  match Sys.getenv_opt "LEAKAGE_GOLDEN_WRITE" with
  | Some path ->
    let oc = open_out path in
    emit oc (Lazy.force runs) (Lazy.force sigma_runs);
    close_out oc;
    Printf.printf "wrote %s (%d circuits)\n" path (Array.length (Lazy.force runs))
  | None ->
    Alcotest.run "golden"
      [
        ( "suite",
          [
            Alcotest.test_case "fixture settings" `Quick test_fixture_settings;
            Alcotest.test_case "totals match golden corpus" `Quick
              test_suite_matches_golden;
            Alcotest.test_case "sigmas match golden corpus" `Quick
              test_sigmas_match_golden;
            Alcotest.test_case "regen path is byte-identical" `Quick
              test_regen_is_byte_identical;
          ] );
      ]
