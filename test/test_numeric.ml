(* Unit and property tests for the numeric substrate. *)

module Rng = Leakage_numeric.Rng
module Stats = Leakage_numeric.Stats
module Interp = Leakage_numeric.Interp
module Rootfind = Leakage_numeric.Rootfind
module Linalg = Leakage_numeric.Linalg
module Solver = Leakage_numeric.Solver
module Telemetry = Leakage_telemetry.Telemetry

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (Rng.bits64 a = Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_diverges () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = Array.init 32 (fun _ -> Rng.bits64 a) in
  let ys = Array.init 32 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_rng_uniform_range () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let u = Rng.uniform r in
    if u < 0.0 || u >= 1.0 then Alcotest.fail "uniform outside [0,1)"
  done

let test_rng_int_bounds () =
  let r = Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int outside bounds"
  done

let test_rng_int_large_bound () =
  (* regression: 63-bit truncation used to produce negative values *)
  let r = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.int r max_int in
    if v < 0 then Alcotest.fail "negative draw"
  done

let test_rng_int_rejects_nonpositive () =
  let r = Rng.create 6 in
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_gaussian_moments () =
  let r = Rng.create 12 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian r) in
  Alcotest.(check (float 0.03)) "mean ~ 0" 0.0 (Stats.mean xs);
  Alcotest.(check (float 0.03)) "std ~ 1" 1.0 (Stats.std xs)

let test_rng_normal_scaling () =
  let r = Rng.create 13 in
  let xs = Array.init 50_000 (fun _ -> Rng.normal r ~mean:5.0 ~sigma:2.0) in
  Alcotest.(check (float 0.06)) "mean" 5.0 (Stats.mean xs);
  Alcotest.(check (float 0.06)) "sigma" 2.0 (Stats.std xs)

let test_rng_shuffle_permutes () =
  let r = Rng.create 14 in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Rng.shuffle r b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check bool) "same multiset" true (sorted = a);
  Alcotest.(check bool) "actually moved" false (b = a)

let test_rng_pick () =
  let r = Rng.create 15 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    let v = Rng.pick r a in
    if v < 1 || v > 3 then Alcotest.fail "pick outside array"
  done

(* ---------------------------------------------------------------- Stats *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let test_stats_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_stats_variance () =
  check_float "variance of 1..5" 2.5 (Stats.variance [| 1.; 2.; 3.; 4.; 5. |])

let test_stats_variance_singleton () =
  check_float "singleton variance" 0.0 (Stats.variance [| 42.0 |])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 2. |] in
  check_float "min" (-1.) lo;
  check_float "max" 7. hi

let test_stats_percentile_endpoints () =
  let a = [| 10.; 20.; 30.; 40. |] in
  check_float "p0" 10. (Stats.percentile a 0.);
  check_float "p100" 40. (Stats.percentile a 100.);
  check_float "p50" 25. (Stats.percentile a 50.)

let test_stats_percentile_unsorted_input () =
  let a = [| 40.; 10.; 30.; 20. |] in
  check_float "median of unsorted" 25. (Stats.median a);
  Alcotest.(check bool) "input untouched" true (a = [| 40.; 10.; 30.; 20. |])

let test_stats_summary () =
  let s = Stats.summarize (Array.init 101 float_of_int) in
  Alcotest.(check int) "n" 101 s.Stats.n;
  check_float "mean" 50.0 s.Stats.mean;
  check_float "median" 50.0 s.Stats.p50;
  check_float "p05" 5.0 s.Stats.p05

let test_stats_histogram_counts () =
  let h = Stats.histogram ~bins:4 [| 0.; 1.; 2.; 3.; 4. |] in
  Alcotest.(check int) "total count" 5 (Array.fold_left ( + ) 0 h.Stats.counts);
  Alcotest.(check int) "bins" 4 (Array.length h.Stats.counts);
  Alcotest.(check int) "last bin holds top value" 2 h.Stats.counts.(3)

let test_stats_histogram_in_clamps () =
  let h =
    Stats.histogram_in ~lo:0.0 ~hi:1.0 ~bins:2 [| -5.0; 0.25; 0.75; 9.0 |]
  in
  Alcotest.(check int) "low clamp" 2 h.Stats.counts.(0);
  Alcotest.(check int) "high clamp" 2 h.Stats.counts.(1)

let test_stats_histogram_degenerate () =
  let h = Stats.histogram ~bins:3 [| 2.0; 2.0; 2.0 |] in
  Alcotest.(check int) "all in one bin" 3 h.Stats.counts.(0)

let test_stats_bin_centers () =
  let h = Stats.histogram_in ~lo:0.0 ~hi:4.0 ~bins:4 [| 1.0 |] in
  let c = Stats.bin_centers h in
  check_float "first center" 0.5 c.(0);
  check_float "last center" 3.5 c.(3)

let test_stats_correlation () =
  let a = [| 1.; 2.; 3.; 4. |] in
  check_float "self correlation" 1.0 (Stats.correlation a a);
  check_float "anti correlation" (-1.0)
    (Stats.correlation a (Array.map (fun x -> -.x) a));
  check_float "constant gives 0" 0.0 (Stats.correlation a [| 5.; 5.; 5.; 5. |])

let test_stats_relative_error () =
  check_float "+10%" 0.1 (Stats.relative_error ~reference:10.0 11.0)

(* --------------------------------------------------------------- Interp *)

let test_interp_linspace () =
  let xs = Interp.linspace 0.0 1.0 5 in
  Alcotest.(check int) "count" 5 (Array.length xs);
  check_float "first" 0.0 xs.(0);
  check_float "last" 1.0 xs.(4);
  check_float "step" 0.25 xs.(1)

let test_interp_1d_exact_on_nodes () =
  let g = Interp.grid1d ~xs:[| 0.; 1.; 3. |] ~ys:[| 5.; 7.; 1. |] in
  check_float "node 0" 5. (Interp.eval1d g 0.);
  check_float "node 1" 7. (Interp.eval1d g 1.);
  check_float "node 2" 1. (Interp.eval1d g 3.)

let test_interp_1d_linear_between () =
  let g = Interp.grid1d ~xs:[| 0.; 2. |] ~ys:[| 0.; 4. |] in
  check_float "midpoint" 2. (Interp.eval1d g 1.);
  check_float "quarter" 1. (Interp.eval1d g 0.5)

let test_interp_1d_clamps () =
  let g = Interp.grid1d ~xs:[| 0.; 1. |] ~ys:[| 3.; 9. |] in
  check_float "below" 3. (Interp.eval1d g (-5.));
  check_float "above" 9. (Interp.eval1d g 100.)

let test_interp_1d_rejects_bad_axis () =
  Alcotest.check_raises "non increasing"
    (Invalid_argument "Interp.grid1d: axis must be strictly increasing")
    (fun () -> ignore (Interp.grid1d ~xs:[| 0.; 0. |] ~ys:[| 1.; 2. |]))

let test_interp_2d_bilinear () =
  let g =
    Interp.grid2d ~xs:[| 0.; 1. |] ~ys:[| 0.; 1. |]
      ~values:[| [| 0.; 1. |]; [| 2.; 3. |] |]
  in
  check_float "corner 00" 0. (Interp.eval2d g 0. 0.);
  check_float "corner 11" 3. (Interp.eval2d g 1. 1.);
  check_float "center" 1.5 (Interp.eval2d g 0.5 0.5);
  check_float "x edge midpoint" 1.0 (Interp.eval2d g 0.5 0.0)

let test_interp_2d_clamps () =
  let g =
    Interp.grid2d ~xs:[| 0.; 1. |] ~ys:[| 0.; 1. |]
      ~values:[| [| 0.; 1. |]; [| 2.; 3. |] |]
  in
  check_float "clamped corner" 3. (Interp.eval2d g 10. 10.)

let test_interp_1d_rejects_nan () =
  (* regression: NaN fell through every segment comparison and produced
     garbage instead of an error *)
  let g = Interp.grid1d ~xs:[| 0.; 1. |] ~ys:[| 3.; 9. |] in
  Alcotest.check_raises "nan x"
    (Invalid_argument "Interp.eval1d: NaN coordinate")
    (fun () -> ignore (Interp.eval1d g Float.nan))

let test_interp_2d_rejects_nan () =
  let g =
    Interp.grid2d ~xs:[| 0.; 1. |] ~ys:[| 0.; 1. |]
      ~values:[| [| 0.; 1. |]; [| 2.; 3. |] |]
  in
  Alcotest.check_raises "nan x"
    (Invalid_argument "Interp.eval2d: NaN coordinate")
    (fun () -> ignore (Interp.eval2d g Float.nan 0.5));
  Alcotest.check_raises "nan y"
    (Invalid_argument "Interp.eval2d: NaN coordinate")
    (fun () -> ignore (Interp.eval2d g 0.5 Float.nan))

let prop_interp_reproduces_linear =
  qtest "interp1d is exact for affine functions"
    QCheck2.Gen.(tup2 (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (a, b) ->
      let f x = (a *. x) +. b in
      let xs = Interp.linspace (-2.0) 2.0 9 in
      let g = Interp.tabulate1d ~xs ~f in
      List.for_all
        (fun x -> abs_float (Interp.eval1d g x -. f x) < 1e-9)
        [ -1.9; -0.3; 0.0; 0.7; 1.99 ])

let prop_interp2d_matches_tabulated_bilinear =
  qtest "interp2d is exact for bilinear functions"
    QCheck2.Gen.(tup3 (float_range (-2.) 2.) (float_range (-2.) 2.)
                   (float_range (-2.) 2.))
    (fun (a, b, c) ->
      let f x y = (a *. x) +. (b *. y) +. (c *. x *. y) in
      let xs = Interp.linspace 0.0 1.0 4 in
      let g = Interp.tabulate2d ~xs ~ys:xs ~f in
      List.for_all
        (fun (x, y) -> abs_float (Interp.eval2d g x y -. f x y) < 1e-9)
        [ (0.1, 0.9); (0.5, 0.5); (0.99, 0.01) ])

(* ------------------------------------------------------------- Rootfind *)

let test_brent_sqrt2 () =
  let f x = (x *. x) -. 2.0 in
  check_float ~eps:1e-10 "sqrt 2" (sqrt 2.0) (Rootfind.brent ~f 0.0 2.0)

let test_brent_endpoint_root () =
  let f x = x -. 1.0 in
  check_float "endpoint" 1.0 (Rootfind.brent ~f 1.0 2.0)

let test_brent_rejects_unbracketed () =
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Rootfind.brent: root not bracketed")
    (fun () -> ignore (Rootfind.brent ~f:(fun x -> x +. 10.0) 0.0 1.0))

let test_newton_bracketed_exp () =
  let f x = exp x -. 3.0 in
  let df x = exp x in
  check_float ~eps:1e-9 "ln 3" (log 3.0)
    (Rootfind.newton_bracketed ~f ~df ~lo:0.0 ~hi:2.0 0.5)

let test_newton_numeric_stiff () =
  (* strongly curved function mimicking a subthreshold I-V *)
  let f v = (1e-9 *. (exp (v /. 0.026) -. 1.0)) -. 5e-7 in
  let root = Rootfind.newton_numeric ~f ~lo:0.0 ~hi:1.0 0.5 in
  check_float ~eps:1e-9 "residual ~ 0" 0.0 (f root /. 5e-7)

let test_expand_bracket () =
  let f x = x -. 100.0 in
  let a, b = Rootfind.expand_bracket ~f 0.0 1.0 in
  Alcotest.(check bool) "brackets" true (f a <= 0.0 && f b >= 0.0)

let prop_brent_polynomial_roots =
  qtest "brent finds the root of (x - r)(x + r + 3)"
    QCheck2.Gen.(float_range 0.1 5.0)
    (fun r ->
      let f x = (x -. r) *. (x +. r +. 3.0) in
      let root = Rootfind.brent ~f 0.0 10.0 in
      abs_float (root -. r) < 1e-8)

(* An exhausted iteration budget must be reported — the exception plus a
   tick on the registry's nonconvergence counter — never swallowed. *)
let test_brent_budget_exhaustion_is_counted () =
  Telemetry.set_enabled true;
  Telemetry.reset ();
  let f x = (x *. x) -. 2.0 in
  (match Rootfind.brent ~tol:1e-15 ~max_iter:1 ~f 0.0 2.0 with
   | _ -> Alcotest.fail "expected No_convergence"
   | exception Rootfind.No_convergence _ -> ());
  let snap = Telemetry.Snapshot.take () in
  Telemetry.set_enabled false;
  Alcotest.(check int) "rootfind.nonconverged counted" 1
    (Telemetry.Snapshot.counter_total snap "rootfind.nonconverged")

(* --------------------------------------------------------------- Linalg *)

let test_linalg_identity_solve () =
  let x = Linalg.lu_solve (Linalg.identity 3) [| 1.; 2.; 3. |] in
  Alcotest.(check bool) "identity" true (x = [| 1.; 2.; 3. |])

let test_linalg_known_system () =
  (* [[2,1],[1,3]] x = [3,5] -> x = [4/5, 7/5] *)
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Linalg.lu_solve a [| 3.; 5. |] in
  check_float ~eps:1e-12 "x0" 0.8 x.(0);
  check_float ~eps:1e-12 "x1" 1.4 x.(1)

let test_linalg_pivoting () =
  let a = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Linalg.lu_solve a [| 2.; 3. |] in
  check_float "x0" 3. x.(0);
  check_float "x1" 2. x.(1)

let test_linalg_singular () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Linalg.Singular (fun () ->
      ignore (Linalg.lu_solve a [| 1.; 1. |]))

let test_linalg_mat_vec () =
  let y = Linalg.mat_vec [| [| 1.; 2. |]; [| 3.; 4. |] |] [| 1.; 1. |] in
  Alcotest.(check bool) "product" true (y = [| 3.; 7. |])

let test_linalg_mat_mul () =
  let c = Linalg.mat_mul [| [| 1.; 2. |] |] [| [| 3. |]; [| 4. |] |] in
  check_float "1x1 result" 11. c.(0).(0)

let test_linalg_norms () =
  check_float "inf" 3.0 (Linalg.norm_inf [| 1.; -3.; 2. |]);
  check_float "l2" 5.0 (Linalg.norm2 [| 3.; 4. |])

let test_linalg_solve_many () =
  let a = [| [| 2.; 0. |]; [| 0.; 4. |] |] in
  let xs = Linalg.solve_many a [| [| 2.; 4. |]; [| 4.; 8. |] |] in
  Alcotest.(check bool) "rhs 0" true (xs.(0) = [| 1.; 1. |]);
  Alcotest.(check bool) "rhs 1" true (xs.(1) = [| 2.; 2. |])

let test_linalg_does_not_mutate () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let b = [| 3.; 5. |] in
  ignore (Linalg.lu_solve a b);
  Alcotest.(check bool) "a intact" true (a = [| [| 2.; 1. |]; [| 1.; 3. |] |]);
  Alcotest.(check bool) "b intact" true (b = [| 3.; 5. |])

let prop_lu_solves_random_dd =
  qtest ~count:100 "LU solves diagonally dominant random systems"
    QCheck2.Gen.(array_size (return 9) (float_range (-1.0) 1.0))
    (fun entries ->
      let a =
        Array.init 3 (fun i ->
            Array.init 3 (fun j ->
                let v = entries.((3 * i) + j) in
                if i = j then 4.0 +. abs_float v else v))
      in
      let x_true = [| 1.0; -2.0; 0.5 |] in
      let b = Linalg.mat_vec a x_true in
      let x = Linalg.lu_solve a b in
      Array.for_all2 (fun u v -> abs_float (u -. v) < 1e-9) x x_true)

(* --------------------------------------------------------------- Solver *)

let test_solver_linear_system () =
  let f x = [| x.(0) +. x.(1) -. 3.0; x.(0) -. x.(1) -. 1.0 |] in
  let r = Solver.solve ~f [| 0.0; 0.0 |] in
  Alcotest.(check bool) "converged" true r.Solver.converged;
  check_float ~eps:1e-8 "x0" 2.0 r.Solver.x.(0);
  check_float ~eps:1e-8 "x1" 1.0 r.Solver.x.(1)

let test_solver_nonlinear () =
  let f x = [| (x.(0) *. x.(0)) -. 4.0; exp x.(1) -. 1.0 |] in
  let r = Solver.solve ~f [| 3.0; 0.5 |] in
  Alcotest.(check bool) "converged" true r.Solver.converged;
  check_float ~eps:1e-6 "x0" 2.0 r.Solver.x.(0);
  check_float ~eps:1e-6 "x1" 0.0 r.Solver.x.(1)

let test_solver_respects_bounds () =
  let f x = [| x.(0) +. 5.0 |] in
  let r = Solver.solve ~lower:[| 0.0 |] ~upper:[| 10.0 |] ~f [| 5.0 |] in
  check_float ~eps:1e-9 "clamped at lower bound" 0.0 r.Solver.x.(0)

let test_solver_does_not_mutate_input () =
  let x0 = [| 1.0; 1.0 |] in
  let f x = [| x.(0) -. 2.0; x.(1) -. 3.0 |] in
  ignore (Solver.solve ~f x0);
  Alcotest.(check bool) "input intact" true (x0 = [| 1.0; 1.0 |])

(* A deliberately starved iteration budget is reported on the result record
   *and* on the registry's nonconvergence counter, never swallowed. *)
let test_solver_reports_nonconvergence () =
  Telemetry.set_enabled true;
  Telemetry.reset ();
  (* x^2 + 1 has no real zero: the residual can never reach tolerance *)
  let f x = [| (x.(0) *. x.(0)) +. 1.0 |] in
  let options = { Solver.default_options with Solver.max_iter = 1 } in
  let r = Solver.solve ~options ~f [| 3.0 |] in
  let snap = Telemetry.Snapshot.take () in
  Telemetry.set_enabled false;
  Alcotest.(check bool) "not converged" false r.Solver.converged;
  Alcotest.(check int) "iterations capped" 1 r.Solver.iterations;
  Alcotest.(check int) "solver.nonconverged counted" 1
    (Telemetry.Snapshot.counter_total snap "solver.nonconverged");
  Alcotest.(check int) "solver.calls counted" 1
    (Telemetry.Snapshot.counter_total snap "solver.calls")

let () =
  Alcotest.run "numeric"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int large bound" `Quick test_rng_int_large_bound;
          Alcotest.test_case "int rejects <= 0" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "normal scaling" `Slow test_rng_normal_scaling;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "mean empty" `Quick test_stats_mean_empty;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "variance singleton" `Quick test_stats_variance_singleton;
          Alcotest.test_case "min max" `Quick test_stats_min_max;
          Alcotest.test_case "percentile endpoints" `Quick test_stats_percentile_endpoints;
          Alcotest.test_case "percentile unsorted" `Quick test_stats_percentile_unsorted_input;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "histogram counts" `Quick test_stats_histogram_counts;
          Alcotest.test_case "histogram clamps" `Quick test_stats_histogram_in_clamps;
          Alcotest.test_case "histogram degenerate" `Quick test_stats_histogram_degenerate;
          Alcotest.test_case "bin centers" `Quick test_stats_bin_centers;
          Alcotest.test_case "correlation" `Quick test_stats_correlation;
          Alcotest.test_case "relative error" `Quick test_stats_relative_error;
        ] );
      ( "interp",
        [
          Alcotest.test_case "linspace" `Quick test_interp_linspace;
          Alcotest.test_case "1d exact nodes" `Quick test_interp_1d_exact_on_nodes;
          Alcotest.test_case "1d linear" `Quick test_interp_1d_linear_between;
          Alcotest.test_case "1d clamps" `Quick test_interp_1d_clamps;
          Alcotest.test_case "1d bad axis" `Quick test_interp_1d_rejects_bad_axis;
          Alcotest.test_case "2d bilinear" `Quick test_interp_2d_bilinear;
          Alcotest.test_case "2d clamps" `Quick test_interp_2d_clamps;
          Alcotest.test_case "1d rejects NaN" `Quick test_interp_1d_rejects_nan;
          Alcotest.test_case "2d rejects NaN" `Quick test_interp_2d_rejects_nan;
          prop_interp_reproduces_linear;
          prop_interp2d_matches_tabulated_bilinear;
        ] );
      ( "rootfind",
        [
          Alcotest.test_case "brent sqrt2" `Quick test_brent_sqrt2;
          Alcotest.test_case "brent endpoint" `Quick test_brent_endpoint_root;
          Alcotest.test_case "brent unbracketed" `Quick test_brent_rejects_unbracketed;
          Alcotest.test_case "newton exp" `Quick test_newton_bracketed_exp;
          Alcotest.test_case "newton stiff" `Quick test_newton_numeric_stiff;
          Alcotest.test_case "expand bracket" `Quick test_expand_bracket;
          Alcotest.test_case "budget exhaustion counted" `Quick
            test_brent_budget_exhaustion_is_counted;
          prop_brent_polynomial_roots;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "identity" `Quick test_linalg_identity_solve;
          Alcotest.test_case "known 2x2" `Quick test_linalg_known_system;
          Alcotest.test_case "pivoting" `Quick test_linalg_pivoting;
          Alcotest.test_case "singular" `Quick test_linalg_singular;
          Alcotest.test_case "mat vec" `Quick test_linalg_mat_vec;
          Alcotest.test_case "mat mul" `Quick test_linalg_mat_mul;
          Alcotest.test_case "norms" `Quick test_linalg_norms;
          Alcotest.test_case "solve many" `Quick test_linalg_solve_many;
          Alcotest.test_case "no mutation" `Quick test_linalg_does_not_mutate;
          prop_lu_solves_random_dd;
        ] );
      ( "solver",
        [
          Alcotest.test_case "linear" `Quick test_solver_linear_system;
          Alcotest.test_case "nonlinear" `Quick test_solver_nonlinear;
          Alcotest.test_case "bounds" `Quick test_solver_respects_bounds;
          Alcotest.test_case "input untouched" `Quick test_solver_does_not_mutate_input;
          Alcotest.test_case "nonconvergence reported" `Quick
            test_solver_reports_nonconvergence;
        ] );
    ]
