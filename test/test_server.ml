(* Tests of the serve layer: wire framing codecs, protocol round trips,
   scheduler admission and ordering, registry restore-after-kill, and an
   in-process loopback client/server session checked bit-for-bit against a
   direct Incremental session and the full Estimator. *)

module Wire = Leakage_server.Wire
module Protocol = Leakage_server.Protocol
module Scheduler = Leakage_server.Scheduler
module Registry = Leakage_server.Registry
module Server = Leakage_server.Server
module Client = Leakage_server.Client
module Params = Leakage_device.Params
module Physics = Leakage_device.Physics
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Bench_format = Leakage_circuit.Bench_format
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Incremental = Leakage_incremental.Incremental
module Edit = Leakage_incremental.Edit
module Telemetry = Leakage_telemetry.Telemetry

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let components =
  Alcotest.testable
    (fun ppf (c : Report.components) ->
      Format.fprintf ppf "{isub=%h; igate=%h; ibtbt=%h}" c.Report.isub
        c.Report.igate c.Report.ibtbt)
    (fun a b ->
      Float.equal a.Report.isub b.Report.isub
      && Float.equal a.Report.igate b.Report.igate
      && Float.equal a.Report.ibtbt b.Report.ibtbt)

(* ----------------------------------------------------------------- wire *)

let gen_frame =
  QCheck2.Gen.(
    map2
      (fun op payload -> { Wire.op; payload })
      (int_bound 255)
      (string_size (int_bound 80)))

let prop_frame_roundtrip =
  qtest "frame encode/decode round trip" gen_frame (fun f ->
      Wire.frame_of_string (Wire.frame_to_string f) = f)

let prop_frame_truncation =
  qtest "every strict prefix is Truncated" gen_frame (fun f ->
      let s = Wire.frame_to_string f in
      (* check a handful of prefix lengths, including header cuts *)
      List.for_all
        (fun keep ->
          match Wire.frame_of_string (String.sub s 0 keep) with
          | _ -> false
          | exception Wire.Truncated -> true)
        [ 0; 3; Wire.header_size - 1; String.length s - 1 ])

let test_frame_bad_magic () =
  let s = Wire.frame_to_string { Wire.op = 1; payload = "x" } in
  let bad = "XKS1" ^ String.sub s 4 (String.length s - 4) in
  Alcotest.check_raises "magic" (Wire.Bad_frame "bad magic") (fun () ->
      ignore (Wire.frame_of_string bad))

let test_frame_bad_version () =
  let s = Bytes.of_string (Wire.frame_to_string { Wire.op = 1; payload = "" }) in
  Bytes.set s 4 '\x7f';
  Alcotest.check_raises "version" (Wire.Bad_frame "version 127") (fun () ->
      ignore (Wire.frame_of_string (Bytes.to_string s)))

let test_frame_oversize_declaration () =
  let b = Buffer.create 16 in
  Buffer.add_string b Wire.magic;
  Wire.put_u8 b Wire.version;
  Wire.put_u8 b 1;
  Wire.put_u32 b (Wire.max_payload + 1);
  Alcotest.(check bool) "oversize is Bad_frame, not an allocation" true
    (match Wire.frame_of_string (Buffer.contents b) with
     | _ -> false
     | exception Wire.Bad_frame _ -> true)

let test_frame_trailing_bytes () =
  let s = Wire.frame_to_string { Wire.op = 1; payload = "hi" } in
  Alcotest.(check bool) "trailing byte rejected" true
    (match Wire.frame_of_string (s ^ "!") with
     | _ -> false
     | exception Wire.Bad_frame _ -> true)

let prop_primitive_roundtrip =
  qtest "u32/u64/f64/bool/string codec round trip"
    QCheck2.Gen.(
      tup4 (int_bound 0xffff_ffff) (map Int64.of_int int)
        (map (fun i -> float_of_int i /. 16.0) int)
        (string_size (int_bound 40)))
    (fun (u, i64, f, s) ->
      let b = Buffer.create 64 in
      Wire.put_u32 b u;
      Wire.put_u64 b i64;
      Wire.put_f64 b f;
      Wire.put_bool b true;
      Wire.put_string b s;
      let r = Wire.reader (Buffer.contents b) in
      let u' = Wire.get_u32 r in
      let i64' = Wire.get_u64 r in
      let f' = Wire.get_f64 r in
      let t' = Wire.get_bool r in
      let s' = Wire.get_string r in
      Wire.expect_end r;
      u' = u && i64' = i64 && Float.equal f' f && t' && s' = s)

(* ------------------------------------------------------------- protocol *)

let gen_small_float =
  QCheck2.Gen.(map (fun i -> float_of_int i /. 64.0) (int_range (-100000) 100000))

let gen_edit =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun g f -> Protocol.Resize (g, abs_float f +. 0.125)) small_nat gen_small_float;
        map2 (fun g k -> Protocol.Retype (g, k)) small_nat (string_size (int_bound 8));
        map2 (fun n b -> Protocol.Set_input (n, b)) small_nat bool;
      ])

let gen_circuit =
  QCheck2.Gen.(
    oneof
      [
        map (fun s -> Protocol.Builtin s) (string_size (int_bound 10));
        map2
          (fun name text -> Protocol.Bench { name; text })
          (string_size (int_bound 10))
          (string_size (int_bound 60));
      ])

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        return Protocol.Ping;
        return Protocol.Metrics;
        return Protocol.Metrics_snapshot;
        return Protocol.Shutdown;
        map3
          (fun tenant circuit (device, temp_c, pattern) ->
            Protocol.Open_session { tenant; circuit; device; temp_c; pattern })
          (string_size (int_bound 12))
          gen_circuit
          (tup3 (string_size (int_bound 8)) gen_small_float
             (string_size (int_bound 12)));
        map2
          (fun session edits -> Protocol.Apply_batch { session; edits })
          small_nat (list_size (int_bound 8) gen_edit);
        map2
          (fun session refresh -> Protocol.Query { session; refresh })
          small_nat bool;
        map (fun session -> Protocol.Checkpoint { session }) small_nat;
        map2
          (fun session checkpoint -> Protocol.Rollback { session; checkpoint })
          small_nat small_nat;
        map (fun session -> Protocol.Close { session }) small_nat;
      ])

let gen_components =
  QCheck2.Gen.(
    map3
      (fun isub igate ibtbt -> { Report.isub; igate; ibtbt })
      gen_small_float gen_small_float gen_small_float)

let gen_label = QCheck2.Gen.(string_size ~gen:printable (int_bound 8))

let gen_hist =
  QCheck2.Gen.(
    map3
      (fun pairs sum (mn, mx) ->
        let buckets = Array.make Telemetry.Snapshot.n_buckets 0 in
        List.iter (fun (b, n) -> buckets.(b) <- n + 1) pairs;
        let count = Array.fold_left ( + ) 0 buckets in
        { Telemetry.Snapshot.count; sum; min = mn; max = mx; buckets })
      (list_size (int_bound 5) (tup2 (int_bound 63) small_nat))
      gen_small_float
      (tup2 gen_small_float gen_small_float))

(* arbitrary but well-typed snapshots: the codec must round-trip whatever
   structure the merge produces, including sparse buckets and labeled-name
   metadata with hostile characters *)
let gen_snapshot =
  QCheck2.Gen.(
    map3
      (fun counters gauges (histograms, meta, taken_at) ->
        Telemetry.Snapshot.make ~taken_at ~counters ~gauges ~histograms ~meta)
      (list_size (int_bound 4)
         (tup3 gen_label small_nat
            (list_size (int_bound 3) (tup2 (int_bound 7) small_nat))))
      (list_size (int_bound 4) (tup2 gen_label gen_small_float))
      (tup3
         (list_size (int_bound 3) (tup2 gen_label gen_hist))
         (list_size (int_bound 2)
            (tup2 gen_label
               (tup2 gen_label
                  (list_size (int_bound 2) (tup2 gen_label gen_label)))))
         gen_small_float))

let gen_response =
  QCheck2.Gen.(
    oneof
      [
        return Protocol.Pong;
        return Protocol.Shutdown_ack;
        map3
          (fun session digest (status, gates) ->
            Protocol.Session_opened { session; digest; status; gates })
          small_nat
          (string_size (int_bound 32))
          (tup2
             (oneofl [ Protocol.Cold; Protocol.Warm; Protocol.Restored ])
             small_nat);
        map3
          (fun session edits groups ->
            Protocol.Applied { session; edits; groups })
          small_nat small_nat small_nat;
        map3
          (fun session loaded baseline ->
            Protocol.Queried { session; loaded; baseline })
          small_nat gen_components gen_components;
        map2
          (fun session checkpoint ->
            Protocol.Checkpointed { session; checkpoint })
          small_nat small_nat;
        map (fun session -> Protocol.Rolled_back { session }) small_nat;
        map (fun session -> Protocol.Closed { session }) small_nat;
        map (fun s -> Protocol.Metrics_report s) (string_size (int_bound 60));
        map3
          (fun uptime_s version snapshot ->
            Protocol.Metrics_snapshot_report { uptime_s; version; snapshot })
          (map abs_float gen_small_float)
          (string_size (int_bound 12))
          gen_snapshot;
        map3
          (fun code message retry_after_ms ->
            Protocol.Error { code; message; retry_after_ms })
          (oneofl
             [
               Protocol.Bad_request; Protocol.Unknown_session;
               Protocol.Unknown_checkpoint; Protocol.Over_quota;
               Protocol.Shutting_down; Protocol.Internal;
             ])
          (string_size (int_bound 40))
          (map abs_float gen_small_float);
      ])

let prop_request_roundtrip =
  qtest "request encode/decode round trip" gen_request (fun r ->
      Protocol.decode_request (Protocol.encode_request r) = r)

let prop_response_roundtrip =
  qtest "response encode/decode round trip" gen_response (fun r ->
      Protocol.decode_response (Protocol.encode_response r) = r)

let test_protocol_rejects_unknown_opcode () =
  Alcotest.(check bool) "opcode 0x70" true
    (match Protocol.decode_request { Wire.op = 0x70; payload = "" } with
     | _ -> false
     | exception Wire.Bad_frame _ -> true)

let test_protocol_rejects_trailing_payload () =
  let f = Protocol.encode_request Protocol.Ping in
  Alcotest.(check bool) "trailing payload bytes" true
    (match
       Protocol.decode_request { f with Wire.payload = f.Wire.payload ^ "x" }
     with
     | _ -> false
     | exception Wire.Bad_frame _ -> true)

let test_protocol_rejects_truncated_payload () =
  let f =
    Protocol.encode_request
      (Protocol.Open_session
         { tenant = "t"; circuit = Protocol.Builtin "s838"; device = "d25";
           temp_c = 25.0; pattern = "" })
  in
  let cut = { f with Wire.payload = String.sub f.Wire.payload 0 3 } in
  Alcotest.check_raises "payload cut mid-field" Wire.Truncated (fun () ->
      ignore (Protocol.decode_request cut))

(* ------------------------------------------------------------ scheduler *)

let admitted = function Scheduler.Admitted -> true | Scheduler.Rejected _ -> false

let test_scheduler_quota () =
  let s = Scheduler.create ~executors:1 ~quota:2 () in
  Alcotest.(check bool) "first" true (admitted (Scheduler.try_admit s "a"));
  Alcotest.(check bool) "second" true (admitted (Scheduler.try_admit s "a"));
  Alcotest.(check bool) "third is over quota" false
    (admitted (Scheduler.try_admit s "a"));
  Alcotest.(check bool) "other tenant unaffected" true
    (admitted (Scheduler.try_admit s "b"));
  Scheduler.release s "a";
  Alcotest.(check bool) "slot freed" true (admitted (Scheduler.try_admit s "a"));
  Scheduler.shutdown s

(* token buckets run on an explicit clock here, so the test is exact: burst
   at first contact, then one token per 1/rate seconds, capped at burst *)
let test_scheduler_token_bucket () =
  let s = Scheduler.create ~executors:1 ~quota:100 ~rate:10.0 ~burst:2.0 () in
  let t0 = 1000.0 in
  Alcotest.(check bool) "burst 1" true (admitted (Scheduler.try_admit ~now:t0 s "a"));
  Alcotest.(check bool) "burst 2" true (admitted (Scheduler.try_admit ~now:t0 s "a"));
  (match Scheduler.try_admit ~now:t0 s "a" with
   | Scheduler.Admitted -> Alcotest.fail "third admit should be rate-limited"
   | Scheduler.Rejected { retry_after_s; _ } ->
     Alcotest.(check bool) "eta ~ 1/rate" true
       (Float.abs (retry_after_s -. 0.1) < 1e-9));
  (* a different tenant has its own full bucket *)
  Alcotest.(check bool) "tenant b unaffected" true
    (admitted (Scheduler.try_admit ~now:t0 s "b"));
  (* after 0.1s one token refilled; after 10s the bucket is full again but
     capped at burst, not rate * 10 *)
  Alcotest.(check bool) "refilled one token" true
    (admitted (Scheduler.try_admit ~now:(t0 +. 0.1001) s "a"));
  Alcotest.(check bool) "spent again" false
    (admitted (Scheduler.try_admit ~now:(t0 +. 0.1001) s "a"));
  let levels = Scheduler.tenant_tokens ~now:(t0 +. 100.0) s in
  List.iter
    (fun (_, v) ->
      Alcotest.(check bool) "level capped at burst" true (Float.abs (v -. 2.0) < 1e-9))
    levels;
  Alcotest.(check int) "both tenants reported" 2 (List.length levels);
  Scheduler.shutdown s

let test_scheduler_rate_limits_independent_of_inflight () =
  (* tokens are charged on admission and NOT refunded by release: the
     bucket meters arrival rate, the quota meters concurrency *)
  let s = Scheduler.create ~executors:1 ~quota:1 ~rate:1000.0 ~burst:5.0 () in
  let t0 = 0.0 in
  Alcotest.(check bool) "admit" true (admitted (Scheduler.try_admit ~now:t0 s "a"));
  Alcotest.(check bool) "second blocked by in-flight quota" false
    (admitted (Scheduler.try_admit ~now:t0 s "a"));
  Scheduler.release s "a";
  Alcotest.(check bool) "slot freed, tokens remain" true
    (admitted (Scheduler.try_admit ~now:t0 s "a"));
  let tokens = List.assoc "a" (Scheduler.tenant_tokens ~now:t0 s) in
  Alcotest.(check bool) "two tokens spent, none refunded" true
    (Float.abs (tokens -. 3.0) < 1e-9);
  Scheduler.shutdown s

let test_scheduler_serializes_one_key () =
  let s = Scheduler.create ~executors:3 ~quota:8 () in
  let log = ref [] in
  let m = Mutex.create () in
  for i = 0 to 199 do
    Scheduler.submit s ~key:"one-session" (fun () ->
        Mutex.lock m;
        log := i :: !log;
        Mutex.unlock m)
  done;
  Scheduler.shutdown s;
  Alcotest.(check (list int)) "jobs on one key ran in submission order"
    (List.init 200 Fun.id) (List.rev !log)

let test_scheduler_drains_on_shutdown () =
  let s = Scheduler.create ~executors:2 ~quota:8 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 50 do
    Scheduler.submit s ~key:"a" (fun () -> Atomic.incr hits);
    Scheduler.submit s ~key:"b" (fun () -> Atomic.incr hits)
  done;
  Scheduler.shutdown s;
  Alcotest.(check int) "every queued job ran" 100 (Atomic.get hits);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Scheduler.submit: shut down") (fun () ->
      Scheduler.submit s ~key:"a" (fun () -> ()))

(* ------------------------------------------------------------- registry *)

let bench_text =
  "INPUT(a)\nINPUT(b)\nINPUT(c)\n\
   g1 = NAND(a, b)\n\
   g2 = NOR(b, c)\n\
   g3 = XOR(g1, g2)\n\
   g4 = NAND(g3, a)\n\
   OUTPUT(g4)\n"

let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "leak-%s-%d-%.0f" tag (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  Unix.mkdir dir 0o755;
  dir

let rm_rf dir =
  let rec go path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> go (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then go dir

let spec () =
  {
    Registry.circuit = Protocol.Bench { name = "mini"; text = bench_text };
    device_name = "d25";
    device = Params.d25;
    temp_c = 25.0;
  }

let test_registry_restores_last_checkpoint () =
  let dir = fresh_dir "restore" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let r1 = Registry.create ~state_dir:dir () in
  let resolved = Registry.resolve r1 (spec ()) in
  let s, status = Registry.open_session r1 resolved ~pattern:"010" in
  Alcotest.(check string) "first open is cold" "cold"
    (Protocol.session_status_name status);
  Incremental.apply_batch s.Registry.incr [ Edit.Resize (0, 2.0) ];
  Registry.checkpoint_to_disk r1 s;
  Incremental.refresh s.Registry.incr;
  let want = Incremental.totals s.Registry.incr in
  (* more edits that never reach disk — the batch in flight when the
     daemon dies *)
  Incremental.apply_batch s.Registry.incr
    [ Edit.Resize (2, 3.0); Edit.Retype (1, Gate.Nand 2) ];
  (* no flush, no close: r1 is simply abandoned, as a kill would *)
  let r2 = Registry.create ~state_dir:dir () in
  let resolved2 = Registry.resolve r2 (spec ()) in
  let s2, status2 = Registry.open_session r2 resolved2 ~pattern:"" in
  Alcotest.(check string) "reopen restores from disk" "restored"
    (Protocol.session_status_name status2);
  Alcotest.(check string) "restored pattern comes from the checkpoint" "010"
    (Logic.vector_to_string (Incremental.pattern s2.Registry.incr));
  Incremental.refresh s2.Registry.incr;
  Alcotest.check components "state is exactly the last checkpoint" want
    (Incremental.totals s2.Registry.incr)

let test_registry_evicts_idle_lru () =
  let r = Registry.create ~max_sessions:1 () in
  let resolved = Registry.resolve r (spec ()) in
  let s1, _ = Registry.open_session r resolved ~pattern:"000" in
  let other =
    { (spec ()) with
      Registry.circuit =
        Protocol.Bench { name = "mini2"; text = bench_text ^ "OUTPUT(g1)\n" } }
  in
  let resolved2 = Registry.resolve r other in
  Alcotest.(check bool) "different structure, different key" true
    (resolved.Registry.rkey <> resolved2.Registry.rkey);
  let _s2, _ = Registry.open_session r resolved2 ~pattern:"000" in
  Alcotest.(check int) "cap held by evicting the idle LRU" 1
    (Registry.live_count r);
  Alcotest.(check bool) "evicted session no longer found" true
    (Registry.find r s1.Registry.id = None)

(* ----------------------------------------------------- loopback session *)

let with_server ?state_dir f =
  let dir = fresh_dir "srv" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sock = Filename.concat dir "leak.sock" in
  let server =
    Server.create ~executors:2 ~jobs:1 ~quota:4 ~max_sessions:4 ?state_dir
      ~socket:sock ()
  in
  let th = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop server;
      Thread.join th)
    (fun () -> f sock)

let oracle () =
  let nl = Bench_format.parse_string ~name:"mini" bench_text in
  let lib =
    Library.create ~device:Params.d25 ~temp:(Physics.celsius_to_kelvin 25.0) ()
  in
  Incremental.create lib nl (Logic.vector_of_string "010")

let test_loopback_session_matches_oracle () =
  with_server @@ fun sock ->
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  Client.ping c;
  let o =
    Client.open_session c
      ~circuit:(Protocol.Bench { name = "mini"; text = bench_text })
      ~pattern:"010" ()
  in
  Alcotest.(check string) "cold open" "cold"
    (Protocol.session_status_name o.Client.status);
  Alcotest.(check int) "gate count" 4 o.Client.gates;
  let direct = oracle () in
  (* batch 1: all three edit kinds through the wire *)
  let edits1 =
    [ Protocol.Resize (0, 2.0); Protocol.Retype (1, "nand2");
      Protocol.Set_input (0, true) ]
  in
  ignore (Client.apply_batch c ~session:o.Client.session edits1);
  Incremental.apply_batch direct (List.map Protocol.edit_to_incremental edits1);
  let loaded, baseline = Client.query c ~session:o.Client.session () in
  Alcotest.check components "loaded matches the direct session bit-for-bit"
    (Incremental.totals direct) loaded;
  Alcotest.check components "so does the baseline"
    (Incremental.baseline_totals direct) baseline;
  (* checkpoint, drift away, roll back *)
  let ck = Client.checkpoint c ~session:o.Client.session in
  let dck = Incremental.checkpoint direct in
  let edits2 = [ Protocol.Resize (2, 4.0); Protocol.Set_input (2, true) ] in
  ignore (Client.apply_batch c ~session:o.Client.session edits2);
  Incremental.apply_batch direct (List.map Protocol.edit_to_incremental edits2);
  let loaded2, _ = Client.query c ~session:o.Client.session () in
  Alcotest.check components "after the second batch"
    (Incremental.totals direct) loaded2;
  Client.rollback c ~session:o.Client.session ~checkpoint:ck;
  Incremental.rollback direct dck;
  let loaded3, _ = Client.query c ~session:o.Client.session ~refresh:true () in
  Incremental.refresh direct;
  Alcotest.check components "rolled-back refreshed state"
    (Incremental.totals direct) loaded3;
  (* the refreshed reply equals a from-scratch Estimator pass on the same
     state: the wire, registry and scheduler added nothing numeric *)
  let full =
    Estimator.estimate
      (Library.create ~device:Params.d25
         ~temp:(Physics.celsius_to_kelvin 25.0) ())
      (Incremental.current_netlist direct)
      (Incremental.pattern direct)
  in
  Alcotest.check components "matches the full Estimator oracle"
    full.Estimator.totals loaded3;
  (* a second client with byte-different .bench text of the same structure
     attaches warm to the same session *)
  let c2 = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  let o2 =
    Client.open_session c2
      ~circuit:
        (Protocol.Bench
           { name = "other-name"; text = "# comment\n" ^ bench_text })
      ()
  in
  Alcotest.(check string) "second open is warm" "warm"
    (Protocol.session_status_name o2.Client.status);
  Alcotest.(check int) "same session id" o.Client.session o2.Client.session;
  Alcotest.(check string) "same digest" o.Client.digest o2.Client.digest;
  Client.close_session c ~session:o.Client.session

let test_loopback_errors () =
  (* the daemon enables telemetry itself; in-process we must, or the
     metrics reply has no serve counters to mention *)
  Leakage_telemetry.Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Leakage_telemetry.Telemetry.set_enabled false)
  @@ fun () ->
  with_server @@ fun sock ->
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let check_code label want f =
    match f () with
    | _ -> Alcotest.fail (label ^ ": expected a server error")
    | exception Client.Server_error (code, _) ->
      Alcotest.(check string) label want (Protocol.error_code_name code)
  in
  check_code "unknown session" "unknown-session" (fun () ->
      Client.query c ~session:999 ());
  check_code "unknown builtin circuit" "bad-request" (fun () ->
      Client.open_session c ~circuit:(Protocol.Builtin "nope") ());
  check_code "unparsable bench text" "bad-request" (fun () ->
      Client.open_session c
        ~circuit:(Protocol.Bench { name = "b"; text = "g1 = WAT(a)\n" })
        ());
  let o =
    Client.open_session c
      ~circuit:(Protocol.Bench { name = "mini"; text = bench_text })
      ()
  in
  check_code "unknown cell name in retype" "bad-request" (fun () ->
      Client.apply_batch c ~session:o.Client.session
        [ Protocol.Retype (0, "bogus9") ]);
  check_code "unknown checkpoint" "unknown-checkpoint" (fun () ->
      Client.rollback c ~session:o.Client.session ~checkpoint:42);
  (* metrics is plain JSON with serve counters in it *)
  let json = Client.metrics c in
  Alcotest.(check bool) "metrics mention serve.requests" true
    (let needle = "serve.requests" in
     let nl = String.length needle and hl = String.length json in
     let rec scan i =
       i + nl <= hl && (String.sub json i nl = needle || scan (i + 1))
     in
     scan 0)

let test_loopback_rejects_garbage () =
  with_server @@ fun sock ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  let garbage = "this is not a LKS1 frame at all.." in
  ignore (Unix.write_substring fd garbage 0 (String.length garbage));
  match Protocol.decode_response (Wire.read_frame fd) with
  | Protocol.Error { code = Protocol.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "expected a bad_request error frame"

(* ------------------------------------------------------------ transport *)

(* A signal landing during a blocked read must not kill the frame: a
   writer thread (with SIGALRM masked, so every tick lands on the reading
   main thread) dribbles one frame out across many interval-timer firings
   that interrupt the main thread's blocked reads with EINTR. *)
let test_read_frame_survives_eintr () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let frame = { Wire.op = 7; payload = String.make 4096 'x' } in
  let bytes = Wire.frame_to_string frame in
  let hits = ref 0 in
  let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr hits)) in
  let writer =
    Thread.create
      (fun () ->
        ignore (Thread.sigmask Unix.SIG_BLOCK [ Sys.sigalrm ]);
        let n = String.length bytes in
        let rec go off =
          if off < n then begin
            let len = Int.min 256 (n - off) in
            ignore (Unix.write_substring b bytes off len);
            Unix.sleepf 0.01;
            go (off + len)
          end
        in
        (try go 0 with Unix.Unix_error _ -> ());
        Unix.close b)
      ()
  in
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       { Unix.it_interval = 0.003; it_value = 0.003 });
  let got =
    Fun.protect
      ~finally:(fun () ->
        ignore
          (Unix.setitimer Unix.ITIMER_REAL
             { Unix.it_interval = 0.0; it_value = 0.0 });
        Sys.set_signal Sys.sigalrm old;
        Thread.join writer;
        Unix.close a)
      (fun () -> Wire.read_frame a)
  in
  Alcotest.(check bool) "frame intact across EINTRs" true (got = frame);
  Alcotest.(check bool) "timer actually ticked during the read" true
    (!hits > 0)

(* A frame bigger than the socket buffer forces partial writes; the old
   single-shot write silently truncated here. *)
let test_write_frame_no_truncation () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096
   with Unix.Unix_error _ -> ());
  let frame =
    { Wire.op = 3; payload = String.init 300_000 (fun i -> Char.chr (i land 0xff)) }
  in
  let buf = Buffer.create 300_064 in
  let reader =
    Thread.create
      (fun () ->
        let tmp = Bytes.create 8192 in
        let rec go () =
          match Unix.read b tmp 0 8192 with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf tmp 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        in
        go ())
      ()
  in
  Wire.write_frame a frame;
  Unix.close a;
  Thread.join reader;
  Unix.close b;
  Alcotest.(check bool) "every byte arrived, frame decodes" true
    (Wire.frame_of_string (Buffer.contents buf) = frame)

(* Same failure mode one layer up: an HTTP body larger than the socket
   buffer must come out whole. *)
let test_http_write_all_large_body () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096
   with Unix.Unix_error _ -> ());
  let body =
    String.concat "" (List.init 20_000 (fun i -> Printf.sprintf "line %d\n" i))
  in
  let buf = Buffer.create (String.length body) in
  let reader =
    Thread.create
      (fun () ->
        let tmp = Bytes.create 8192 in
        let rec go () =
          match Unix.read b tmp 0 8192 with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf tmp 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        in
        go ())
      ()
  in
  Leakage_server.Http.write_all a body;
  Unix.close a;
  Thread.join reader;
  Unix.close b;
  Alcotest.(check int) "byte count" (String.length body)
    (Buffer.length buf);
  Alcotest.(check bool) "content identical" true (Buffer.contents buf = body)

(* ------------------------------------------------------- client policy *)

(* a hand-rolled misbehaving server: [behavior] gets the accepted fd *)
let with_fake_server behavior f =
  let dir = fresh_dir "fake" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sock = Filename.concat dir "fake.sock" in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX sock);
  Unix.listen lfd 4;
  let th =
    Thread.create
      (fun () ->
        match Unix.accept lfd with
        | fd, _ ->
          (try behavior fd with _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      Thread.join th)
    (fun () -> f sock)

let expect_poisoned c =
  match Client.rpc c Protocol.Ping with
  | _ -> Alcotest.fail "second rpc on a broken stream must raise Poisoned"
  | exception Client.Poisoned msg ->
    Alcotest.(check bool) "error says the connection is poisoned" true
      (String.length msg >= 19
      && String.sub msg 0 19 = "connection poisoned")

let test_poisoned_after_timeout () =
  with_fake_server
    (fun fd ->
      ignore (Wire.read_frame fd);
      (* never answer; block until the client hangs up *)
      try ignore (Wire.read_frame fd) with _ -> ())
    (fun sock ->
      let policy =
        { Client.default_policy with timeout_ms = Some 80.0 }
      in
      let c = Client.connect_unix ~policy sock in
      (match Client.ping c with
       | () -> Alcotest.fail "expected a timeout"
       | exception Wire.Timeout -> ());
      Alcotest.(check int) "timeout counted" 1 (Client.stats c).Client.timeouts;
      expect_poisoned c;
      Client.close c)

let test_poisoned_after_bad_frame () =
  with_fake_server
    (fun fd ->
      ignore (Wire.read_frame fd);
      ignore (Unix.write_substring fd "XKS1\x01\x01\x00\x00\x00\x00" 0 10))
    (fun sock ->
      let c = Client.connect_unix sock in
      (match Client.ping c with
       | () -> Alcotest.fail "expected Bad_frame"
       | exception Wire.Bad_frame _ -> ());
      expect_poisoned c;
      Client.close c)

let test_poisoned_after_truncated_reply () =
  with_fake_server
    (fun fd ->
      ignore (Wire.read_frame fd);
      (* five bytes of a reply, then hang up mid-header *)
      let s = Wire.frame_to_string (Protocol.encode_response Protocol.Pong) in
      ignore (Unix.write_substring fd s 0 5))
    (fun sock ->
      let c = Client.connect_unix sock in
      (match Client.ping c with
       | () -> Alcotest.fail "expected Truncated"
       | exception (Wire.Truncated | End_of_file) -> ());
      expect_poisoned c;
      Client.close c)

let test_connect_tcp_resolves_hostname () =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 1;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let th =
    Thread.create
      (fun () ->
        match Unix.accept lfd with
        | fd, _ -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      Thread.join th)
    (fun () ->
      let c = Client.connect_tcp ~host:"localhost" port in
      Client.close c)

let test_connect_tcp_unresolvable_host_fails_cleanly () =
  match Client.connect_tcp ~host:"no-such-host.invalid" 1 with
  | _ -> Alcotest.fail "expected resolution to fail"
  | exception Failure msg ->
    Alcotest.(check bool) "clean failure names the host" true
      (String.length msg > 0)
  | exception Unix.Unix_error _ ->
    Alcotest.fail "unresolvable host must raise Failure, not a raw socket error"

(* ------------------------------------------------------- peer failover *)

let test_registry_adopts_peer_checkpoint () =
  let peer = fresh_dir "peer" in
  let sa = fresh_dir "state-a" in
  let sb = fresh_dir "state-b" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf peer;
      rm_rf sa;
      rm_rf sb)
  @@ fun () ->
  (* daemon A: edit, checkpoint — the bytes ship into the peer dir too *)
  let ra = Registry.create ~state_dir:sa ~peer_dir:peer () in
  let resolved = Registry.resolve ra (spec ()) in
  let s, _ = Registry.open_session ra resolved ~pattern:"010" in
  Incremental.apply_batch s.Registry.incr [ Edit.Resize (0, 2.0) ];
  Registry.checkpoint_to_disk ra s;
  Alcotest.(check int) "checkpoint shipped to the peer dir" 1
    (Array.length (Sys.readdir peer));
  (* stale copy in B's own state dir, dated well into the past: the
     fresher peer version must win *)
  let name = (Sys.readdir peer).(0) in
  let stale = Filename.concat sb name in
  let text =
    let ic = open_in_bin (Filename.concat peer name) in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin stale in
  output_string oc text;
  close_out oc;
  Unix.utimes stale 1000.0 1000.0;
  (* A moves on and checkpoints again; then A is gone, as a kill would be *)
  Incremental.apply_batch s.Registry.incr
    [ Edit.Resize (2, 3.0); Edit.Set_input (1, true) ];
  Registry.checkpoint_to_disk ra s;
  Incremental.refresh s.Registry.incr;
  let want = Incremental.totals s.Registry.incr in
  (* daemon B: different state dir, same peer dir *)
  let rb = Registry.create ~state_dir:sb ~peer_dir:peer () in
  let resolved2 = Registry.resolve rb (spec ()) in
  let s2, status = Registry.open_session rb resolved2 ~pattern:"" in
  Alcotest.(check string) "open adopts the peer checkpoint" "restored"
    (Protocol.session_status_name status);
  Alcotest.(check string) "vector comes from A's state, not the stale copy"
    "010"
    (Logic.vector_to_string (Incremental.pattern s2.Registry.incr));
  Incremental.refresh s2.Registry.incr;
  Alcotest.check components "adopted state is A's newest checkpoint" want
    (Incremental.totals s2.Registry.incr)

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          prop_frame_roundtrip;
          prop_frame_truncation;
          prop_primitive_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_frame_bad_magic;
          Alcotest.test_case "bad version" `Quick test_frame_bad_version;
          Alcotest.test_case "oversize declaration" `Quick
            test_frame_oversize_declaration;
          Alcotest.test_case "trailing bytes" `Quick test_frame_trailing_bytes;
        ] );
      ( "protocol",
        [
          prop_request_roundtrip;
          prop_response_roundtrip;
          Alcotest.test_case "unknown opcode" `Quick
            test_protocol_rejects_unknown_opcode;
          Alcotest.test_case "trailing payload" `Quick
            test_protocol_rejects_trailing_payload;
          Alcotest.test_case "truncated payload" `Quick
            test_protocol_rejects_truncated_payload;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "tenant quota" `Quick test_scheduler_quota;
          Alcotest.test_case "token bucket" `Quick
            test_scheduler_token_bucket;
          Alcotest.test_case "bucket vs in-flight" `Quick
            test_scheduler_rate_limits_independent_of_inflight;
          Alcotest.test_case "per-key order" `Quick
            test_scheduler_serializes_one_key;
          Alcotest.test_case "drains on shutdown" `Quick
            test_scheduler_drains_on_shutdown;
        ] );
      ( "registry",
        [
          Alcotest.test_case "restore after kill" `Quick
            test_registry_restores_last_checkpoint;
          Alcotest.test_case "idle LRU eviction" `Quick
            test_registry_evicts_idle_lru;
          Alcotest.test_case "peer checkpoint adoption" `Quick
            test_registry_adopts_peer_checkpoint;
        ] );
      ( "transport",
        [
          Alcotest.test_case "read_frame survives EINTR" `Quick
            test_read_frame_survives_eintr;
          Alcotest.test_case "write_frame partial writes" `Quick
            test_write_frame_no_truncation;
          Alcotest.test_case "http write_all large body" `Quick
            test_http_write_all_large_body;
        ] );
      ( "client",
        [
          Alcotest.test_case "poisoned after timeout" `Quick
            test_poisoned_after_timeout;
          Alcotest.test_case "poisoned after bad frame" `Quick
            test_poisoned_after_bad_frame;
          Alcotest.test_case "poisoned after truncated reply" `Quick
            test_poisoned_after_truncated_reply;
          Alcotest.test_case "tcp hostname resolution" `Quick
            test_connect_tcp_resolves_hostname;
          Alcotest.test_case "unresolvable host" `Quick
            test_connect_tcp_unresolvable_host_fails_cleanly;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "session matches oracle" `Quick
            test_loopback_session_matches_oracle;
          Alcotest.test_case "error frames" `Quick test_loopback_errors;
          Alcotest.test_case "garbage rejected" `Quick
            test_loopback_rejects_garbage;
        ] );
    ]
