(* Differential replay harness for incremental sessions.

   Replays edit batches through four implementations of the same semantics:

   (a) sequential [Incremental.apply_batch] (no pool), value-aware pruning
       on (the default),
   (b) parallel [apply_batch ~pool] at jobs ∈ {1, 2, 4, 8},
   (c) a from-scratch [Estimator.estimate] oracle on the session's current
       netlist/pattern/libraries,
   (d) sequential [apply_batch ~prune:false] — the structural (unpruned)
       partition,

   asserting exact (bit-identical) state equality between (a) and every (b),
   tolerance-bounded totals agreement between (a) and a per-edit [apply]
   walk, exact equality of every per-net/per-gate field between (a) and (d)
   with tolerance only on the two scalar accumulators (a different partition
   sums the same per-gate deltas in a different float association), and
   tolerance-bounded agreement with (c). On failure the harness
   shrinks the batch list to a minimal failing input (greedy delta
   debugging: drop whole batches, then single edits, while the failure
   reproduces) and reports it with {!Edit.pp}.

   The module is linked into every test executable of the (tests) stanza,
   so pools are created lazily on first use and shut down at exit. *)

module Params = Leakage_device.Params
module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report
module Characterize = Leakage_core.Characterize
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Incremental = Leakage_incremental.Incremental
module Edit = Leakage_incremental.Edit
module Rng = Leakage_numeric.Rng
module Pool = Leakage_parallel.Pool

let device = Params.d25
let temp = 300.0

(* same coarse grid as the other incremental/parallel tests, so the
   characterization cache stays warm across cases *)
let coarse_grid = { Characterize.max_current = 3.0e-6; points = 5 }
let lib = Library.create ~grid:coarse_grid ~device ~temp ()

let hvt_lib =
  Library.create ~grid:coarse_grid
    ~device:(Leakage_incremental.Dual_vth.high_vth_device device)
    ~temp ~vdd:device.Params.vdd ()

let palette = [| 0.5; 1.0; 2.0 |]

let job_counts = [ 1; 2; 4; 8 ]

let pools =
  lazy
    (let ps = List.map (fun j -> Pool.create ~jobs:j ()) job_counts in
     at_exit (fun () -> List.iter Pool.shutdown ps);
     ps)

(* ------------------------------------------------------------ generators *)

(* Random DAG netlist (same shape as test_parallel's): 2-5 inputs, 4-16
   random 1/2-input gates over earlier nets, untouched inputs consumed,
   sinks marked as outputs. *)
let random_netlist rng =
  let b = Netlist.Builder.create "rand" in
  let n_inputs = 2 + Rng.int rng 3 in
  let inputs = Array.init n_inputs (fun _ -> Netlist.Builder.input b) in
  let nets = ref (Array.to_list inputs) in
  let used = Hashtbl.create 32 in
  let pick () = List.nth !nets (Rng.int rng (List.length !nets)) in
  let add_gate kind =
    let ins = Array.init (Gate.arity kind) (fun _ -> pick ()) in
    Array.iter (fun n -> Hashtbl.replace used n ()) ins;
    let out = Netlist.Builder.gate b kind ins in
    nets := out :: !nets
  in
  let n_gates = 4 + Rng.int rng 12 in
  for _ = 1 to n_gates do
    add_gate
      (match Rng.int rng 6 with
       | 0 -> Gate.Inv
       | 1 -> Gate.Buf
       | 2 -> Gate.Nand 2
       | 3 -> Gate.Nor 2
       | 4 -> Gate.And 2
       | _ -> Gate.Or 2)
  done;
  Array.iter
    (fun n ->
      if not (Hashtbl.mem used n) then begin
        Hashtbl.replace used n ();
        let out = Netlist.Builder.gate b Gate.Inv [| n |] in
        nets := out :: !nets
      end)
    inputs;
  List.iter
    (fun n ->
      if not (Hashtbl.mem used n) && not (Array.mem n inputs) then
        Netlist.Builder.mark_output b n)
    !nets;
  Netlist.Builder.finish b

let random_edit rng nl =
  match Rng.int rng 4 with
  | 0 | 1 -> Edit.random_resize ~strengths:palette rng nl
  | 2 -> Edit.random_set_input rng nl
  | _ ->
    let gates = Netlist.gates nl in
    let g = gates.(Rng.int rng (Array.length gates)) in
    (match Array.length g.Netlist.fan_in with
     | 1 ->
       Edit.Retype (g.Netlist.id, if Rng.bool rng then Gate.Inv else Gate.Buf)
     | 2 ->
       Edit.Retype
         (g.Netlist.id, if Rng.bool rng then Gate.Nand 2 else Gate.Nor 2)
     | _ -> Edit.Relib (g.Netlist.id, if Rng.bool rng then hvt_lib else lib))

let random_batch rng nl size = List.init size (fun _ -> random_edit rng nl)

let random_pattern rng nl =
  Logic.random_vector rng (Array.length (Netlist.inputs nl))

(* ----------------------------------------------------------- fingerprint *)

(* Complete observable session state. Two sessions with equal fingerprints
   are indistinguishable through the read API (up to undo-log contents,
   which [depth] proxies). Float fields are compared with Stdlib.compare,
   i.e. exact equality — the parallel/sequential contract is bit-identity,
   not tolerance. *)
type fingerprint = {
  fp_pattern : string;
  fp_values : Logic.value array;
  fp_injection : float array;
  fp_gates : (string * float) array;  (* kind name, strength *)
  fp_per_gate : Report.components array;
  fp_totals : Report.components;
  fp_baseline : Report.components;
  fp_depth : int;
}

let fingerprint s =
  let nl = Incremental.current_netlist s in
  {
    fp_pattern = Logic.vector_to_string (Incremental.pattern s);
    fp_values = Incremental.assignment s;
    fp_injection = Incremental.net_injection s;
    fp_gates =
      Array.map
        (fun (g : Netlist.gate) -> (Gate.name g.Netlist.kind, g.Netlist.strength))
        (Netlist.gates nl);
    fp_per_gate =
      Array.init (Netlist.gate_count nl) (Incremental.gate_components s);
    fp_totals = Incremental.totals s;
    fp_baseline = Incremental.baseline_totals s;
    fp_depth = Incremental.undo_depth s;
  }

(* first differing field, for failure messages *)
let fingerprint_diff a b =
  if Stdlib.compare a b = 0 then None
  else if a.fp_pattern <> b.fp_pattern then
    Some (Printf.sprintf "pattern %s vs %s" a.fp_pattern b.fp_pattern)
  else if Stdlib.compare a.fp_values b.fp_values <> 0 then Some "logic values"
  else if Stdlib.compare a.fp_gates b.fp_gates <> 0 then Some "gate kinds/strengths"
  else if Stdlib.compare a.fp_injection b.fp_injection <> 0 then
    Some "net injections"
  else if Stdlib.compare a.fp_per_gate b.fp_per_gate <> 0 then
    Some "per-gate components"
  else if Stdlib.compare a.fp_totals b.fp_totals <> 0 then
    Some
      (Printf.sprintf "totals %.17g vs %.17g" (Report.total a.fp_totals)
         (Report.total b.fp_totals))
  else if Stdlib.compare a.fp_baseline b.fp_baseline <> 0 then Some "baselines"
  else if a.fp_depth <> b.fp_depth then
    Some (Printf.sprintf "undo depth %d vs %d" a.fp_depth b.fp_depth)
  else Some "unknown field"

let rel a b = if b = 0.0 then Float.abs a else Float.abs (a -. b) /. Float.abs b

let components_close tol (a : Report.components) (b : Report.components) =
  rel a.Report.isub b.Report.isub <= tol
  && rel a.Report.igate b.Report.igate <= tol
  && rel a.Report.ibtbt b.Report.ibtbt <= tol

(* Pruned vs unpruned comparison: the two partitions drive identical
   gate-local updates (same values, entries, injections, per-gate
   components, bit for bit), but group them differently, so the scalar
   totals/baseline accumulators may differ in the last ulps of float
   association. Everything else is compared exactly. *)
let fingerprint_diff_assoc tol a b =
  if a.fp_pattern <> b.fp_pattern then
    Some (Printf.sprintf "pattern %s vs %s" a.fp_pattern b.fp_pattern)
  else if Stdlib.compare a.fp_values b.fp_values <> 0 then Some "logic values"
  else if Stdlib.compare a.fp_gates b.fp_gates <> 0 then Some "gate kinds/strengths"
  else if Stdlib.compare a.fp_injection b.fp_injection <> 0 then
    Some "net injections"
  else if Stdlib.compare a.fp_per_gate b.fp_per_gate <> 0 then
    Some "per-gate components"
  else if not (components_close tol a.fp_totals b.fp_totals) then
    Some
      (Printf.sprintf "totals %.17g vs %.17g beyond association tolerance"
         (Report.total a.fp_totals) (Report.total b.fp_totals))
  else if not (components_close tol a.fp_baseline b.fp_baseline) then
    Some "baselines beyond association tolerance"
  else if a.fp_depth <> b.fp_depth then
    Some (Printf.sprintf "undo depth %d vs %d" a.fp_depth b.fp_depth)
  else None

(* ---------------------------------------------------------------- replay *)

let pp_batches batches =
  String.concat "; "
    (List.map
       (fun batch ->
         "["
         ^ String.concat ", "
             (List.map (fun e -> Format.asprintf "%a" Edit.pp e) batch)
         ^ "]")
       batches)

(* Replay [batches] (each applied as one [apply_batch]) and cross-check the
   three implementations after every batch. [Error reason] on the first
   divergence. *)
let replay ?(oracle_tol = 1e-9) ?(edit_tol = 1e-12) nl pattern batches =
  let seq = Incremental.create lib nl pattern in
  let pooled =
    List.map2
      (fun jobs pool -> (jobs, pool, Incremental.create lib nl pattern))
      job_counts (Lazy.force pools)
  in
  let per_edit = Incremental.create lib nl pattern in
  let unpruned = Incremental.create lib nl pattern in
  let exception Diverged of string in
  try
    List.iteri
      (fun bi batch ->
        Incremental.apply_batch seq batch;
        let reference = fingerprint seq in
        List.iter
          (fun (jobs, pool, s) ->
            Incremental.apply_batch ~pool s batch;
            match fingerprint_diff reference (fingerprint s) with
            | None -> ()
            | Some what ->
              raise
                (Diverged
                   (Printf.sprintf
                      "batch %d: jobs=%d differs from sequential in %s" bi
                      jobs what)))
          pooled;
        Incremental.apply_batch ~prune:false unpruned batch;
        (match
           fingerprint_diff_assoc edit_tol reference (fingerprint unpruned)
         with
         | None -> ()
         | Some what ->
           raise
             (Diverged
                (Printf.sprintf
                   "batch %d: unpruned partition differs from pruned in %s"
                   bi what)));
        List.iter (Incremental.apply per_edit) batch;
        let d =
          rel
            (Report.total (Incremental.totals seq))
            (Report.total (Incremental.totals per_edit))
        in
        if d > edit_tol then
          raise
            (Diverged
               (Printf.sprintf
                  "batch %d: grouped totals differ from per-edit walk by \
                   %.3e rel (> %.0e)"
                  bi d edit_tol));
        let fresh =
          Estimator.estimate
            ~library_of_gate:(Incremental.library_of_gate seq)
            lib
            (Incremental.current_netlist seq)
            (Incremental.pattern seq)
        in
        let dt =
          rel
            (Report.total (Incremental.totals seq))
            (Report.total fresh.Estimator.totals)
        and db =
          rel
            (Report.total (Incremental.baseline_totals seq))
            (Report.total fresh.Estimator.baseline_totals)
        in
        if dt > oracle_tol || db > oracle_tol then
          raise
            (Diverged
               (Printf.sprintf
                  "batch %d: oracle off by %.3e (totals) / %.3e (baseline) \
                   rel (> %.0e)"
                  bi dt db oracle_tol)))
      batches;
    Ok ()
  with Diverged reason -> Error reason

(* ------------------------------------------------------------- shrinking *)

let drop_nth n xs = List.filteri (fun i _ -> i <> n) xs

(* Greedy one-at-a-time delta debugging: repeatedly drop any element whose
   removal keeps the replay failing, to a local minimum. Quadratic in the
   batch size, which is fine at test scale, and deterministic. *)
let shrink_list fails xs =
  let rec pass xs i =
    if i >= List.length xs then xs
    else
      let candidate = drop_nth i xs in
      if fails candidate then pass candidate i else pass xs (i + 1)
  in
  pass xs 0

let shrink nl pattern batches =
  let fails bs =
    bs <> [] && List.exists (fun b -> b <> []) bs
    && Result.is_error (replay nl pattern bs)
  in
  if not (fails batches) then batches
  else begin
    (* whole batches first, then edits inside each batch *)
    let batches = shrink_list fails batches in
    let rec per_batch acc = function
      | [] -> List.rev acc
      | b :: rest ->
        let b' =
          shrink_list (fun b' -> fails (List.rev_append acc (b' :: rest))) b
        in
        per_batch (b' :: acc) rest
    in
    let batches = per_batch [] batches in
    List.filter (fun b -> b <> []) batches
  end

(* ------------------------------------------------- finite differences *)

(* Finite-difference oracle for every closed-form derivative the analytic
   variance propagation relies on: jet-valued device sensitivities, table
   slopes/curvatures, die-scale log-responses. Shared by [test_device] and
   [test_sensitivity] so both suites validate derivatives through one
   implementation with one failure format. *)
module Fd = struct
  let central ~h f x = (f (x +. h) -. f (x -. h)) /. (2.0 *. h)

  let second ~h f x = (f (x +. h) -. (2.0 *. f x) +. f (x -. h)) /. (h *. h)

  (* d ln f / dx and its curvature — the λ/γ convention of the sensitivity
     layer (log-space derivatives of strictly positive responses) *)
  let log_slope ~h f x = central ~h (fun v -> log (f v)) x
  let log_curvature ~h f x = second ~h (fun v -> log (f v)) x

  (* |a − b| ≤ tol·max(|a|,|b|) + floor: relative agreement with an
     absolute floor for derivatives that are legitimately ~0, where the
     difference quotient is pure cancellation noise. *)
  let close ?(tol = 1e-4) ?(floor = 0.0) a b =
    Float.abs (a -. b) <= (tol *. Float.max (Float.abs a) (Float.abs b)) +. floor

  (* Compare an analytic first derivative of [f] at [x] against the central
     difference at step [h]; raise with both values on disagreement. *)
  let check_grad ?tol ?floor ~name ~h f x analytic =
    let fd = central ~h f x in
    if not (close ?tol ?floor fd analytic) then
      failwith
        (Printf.sprintf "%s: analytic %.10g vs finite-difference %.10g (h=%g)"
           name analytic fd h)

  let check_second ?tol ?floor ~name ~h f x analytic =
    let fd = second ~h f x in
    if not (close ?tol ?floor fd analytic) then
      failwith
        (Printf.sprintf
           "%s: analytic second %.10g vs finite-difference %.10g (h=%g)"
           name analytic fd h)
end

(* Replay and, on divergence, shrink and raise with the minimal failing
   input. Returns [true] so qcheck properties can end with [check ...]. *)
let check ?oracle_tol ?edit_tol ~name nl pattern batches =
  match replay ?oracle_tol ?edit_tol nl pattern batches with
  | Ok () -> true
  | Error reason ->
    let minimal = shrink nl pattern batches in
    let reason =
      match replay ?oracle_tol ?edit_tol nl pattern minimal with
      | Error r -> r
      | Ok () -> reason (* flaky shrink; report the original *)
    in
    failwith
      (Printf.sprintf
         "%s: differential replay diverged (%s) on %s; minimal failing \
          batches: %s"
         name reason
         (Logic.vector_to_string pattern)
         (pp_batches minimal))
