(* Unit tests for the telemetry subsystem: registry semantics, the enabled
   gate, per-domain sharding, snapshot merging/serialization, and the span
   tracer's Chrome trace-event output. *)

module Telemetry = Leakage_telemetry.Telemetry
module Trace = Leakage_telemetry.Trace

let with_recording f =
  Telemetry.set_enabled true;
  Telemetry.reset ();
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) f

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

(* ------------------------------------------------------------- registry *)

let test_registration_idempotent () =
  with_recording (fun () ->
      let a = Telemetry.counter "t.reg" in
      let b = Telemetry.counter "t.reg" in
      Telemetry.incr a;
      Telemetry.incr b;
      let snap = Telemetry.Snapshot.take () in
      (* same name, same metric: both increments land on one counter *)
      Alcotest.(check int) "one counter" 2
        (Telemetry.Snapshot.counter_total snap "t.reg"))

let test_disabled_records_nothing () =
  Telemetry.set_enabled false;
  Telemetry.reset ();
  let c = Telemetry.counter "t.off" in
  let h = Telemetry.histogram "t.off_h" in
  Telemetry.incr c;
  Telemetry.add c 41;
  Telemetry.observe h 7.0;
  Alcotest.(check int) "timed thunk still runs" 9
    (Telemetry.time h (fun () -> 9));
  let snap = Telemetry.Snapshot.take () in
  Alcotest.(check int) "counter untouched" 0
    (Telemetry.Snapshot.counter_total snap "t.off");
  Alcotest.(check int) "histogram untouched" 0
    (Telemetry.Snapshot.histogram_count snap "t.off_h");
  Alcotest.(check bool) "snapshot empty" true (Telemetry.Snapshot.is_empty snap)

let test_counter_add_and_incr () =
  with_recording (fun () ->
      let c = Telemetry.counter "t.count" in
      Telemetry.incr c;
      Telemetry.add c 10;
      Telemetry.incr c;
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "total" 12
        (Telemetry.Snapshot.counter_total snap "t.count");
      Alcotest.(check int) "unknown name is 0" 0
        (Telemetry.Snapshot.counter_total snap "t.never"))

let test_histogram_moments () =
  with_recording (fun () ->
      let h = Telemetry.histogram "t.hist" in
      List.iter (Telemetry.observe h) [ 1.0; 3.0; 8.0; 100.0 ];
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "count" 4
        (Telemetry.Snapshot.histogram_count snap "t.hist");
      Alcotest.(check (float 1e-9)) "sum" 112.0
        (Telemetry.Snapshot.histogram_sum snap "t.hist"))

let test_time_observes_duration () =
  with_recording (fun () ->
      let h = Telemetry.histogram "t.timer" in
      Alcotest.(check int) "value through" 5 (Telemetry.time h (fun () -> 5));
      (match Telemetry.time h (fun () -> failwith "boom") with
       | _ -> Alcotest.fail "expected Failure"
       | exception Failure _ -> ());
      let snap = Telemetry.Snapshot.take () in
      (* both the normal return and the raise were timed *)
      Alcotest.(check int) "two observations" 2
        (Telemetry.Snapshot.histogram_count snap "t.timer");
      Alcotest.(check bool) "non-negative duration" true
        (Telemetry.Snapshot.histogram_sum snap "t.timer" >= 0.0))

let test_reset_zeroes () =
  with_recording (fun () ->
      let c = Telemetry.counter "t.reset" in
      Telemetry.incr c;
      Telemetry.reset ();
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "zero after reset" 0
        (Telemetry.Snapshot.counter_total snap "t.reset");
      (* the registration survives: the handle still works *)
      Telemetry.incr c;
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "handle still live" 1
        (Telemetry.Snapshot.counter_total snap "t.reset"))

let test_per_domain_shards () =
  with_recording (fun () ->
      let c = Telemetry.counter "t.sharded" in
      Telemetry.add c 5;
      let d =
        Domain.spawn (fun () ->
            Telemetry.add c 7;
            Domain.self ())
      in
      let worker_id = (Domain.join d :> int) in
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "merged total" 12
        (Telemetry.Snapshot.counter_total snap "t.sharded");
      let by_domain = Telemetry.Snapshot.counter_by_domain snap "t.sharded" in
      Alcotest.(check int) "two shards" 2 (List.length by_domain);
      Alcotest.(check (option int)) "worker shard kept its own 7" (Some 7)
        (List.assoc_opt worker_id by_domain))

let test_snapshot_json_shape () =
  with_recording (fun () ->
      let c = Telemetry.counter "t.json_c" in
      let h = Telemetry.histogram "t.json_h" in
      Telemetry.add c 3;
      Telemetry.observe h 2.5;
      let json = Telemetry.Snapshot.to_json (Telemetry.Snapshot.take ()) in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("contains " ^ needle) true
            (contains json needle))
        [ "\"counters\""; "\"counters_by_domain\""; "\"histograms\"";
          "\"t.json_c\": 3"; "\"t.json_h\""; "\"count\": 1"; "\"sum\": 2.5" ])

(* ---------------------------------------------------------------- trace *)

let test_trace_spans_and_json () =
  Trace.start ();
  let v =
    Trace.with_span ~cat:"test" ~args:[ ("k", "v") ] "outer" (fun () ->
        Trace.with_span "inner" (fun () -> 21 * 2))
  in
  Trace.instant "marker";
  (match Trace.with_span "raising" (fun () -> failwith "boom") with
   | _ -> Alcotest.fail "expected Failure"
   | exception Failure _ -> ());
  Trace.stop ();
  Alcotest.(check int) "value through spans" 42 v;
  (* outer + inner + raising + instant *)
  Alcotest.(check int) "events recorded" 4 (Trace.event_count ());
  let json = Trace.to_json () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains json needle))
    [ "\"traceEvents\""; "\"displayTimeUnit\""; "thread_name";
      "\"outer\""; "\"inner\""; "\"raising\""; "\"marker\"";
      "\"ph\": \"X\""; "\"ph\": \"i\""; "\"k\": \"v\"" ]

let test_trace_disabled_is_passthrough () =
  Trace.start ();
  Trace.stop ();
  (* recorded-but-stopped state: spans run their thunk, record nothing *)
  Alcotest.(check int) "thunk runs" 3 (Trace.with_span "off" (fun () -> 3));
  Alcotest.(check int) "nothing recorded" 0 (Trace.event_count ());
  (* start clears any previous events *)
  Trace.start ();
  Trace.instant "one";
  Trace.stop ();
  Alcotest.(check int) "fresh after start" 1 (Trace.event_count ())

let test_trace_escapes_strings () =
  Trace.start ();
  Trace.instant ~args:[ ("path", "a\"b\\c\nd") ] "quote\"name";
  Trace.stop ();
  let json = Trace.to_json () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains json needle))
    [ {|quote\"name|}; {|a\"b\\c\nd|} ]

(* --------------------------------------------------- publish-once library *)

module Library = Leakage_core.Library
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Params = Leakage_device.Params

let test_library_publish_once () =
  with_recording (fun () ->
      let lib = Library.create ~device:Params.d25 ~temp:300.0 () in
      let vec = [| Logic.Zero; Logic.One |] in
      ignore (Library.entry lib (Gate.Nand 2) vec);
      let snap = Telemetry.Snapshot.take () in
      let misses = Telemetry.Snapshot.counter_total snap "library.misses" in
      Alcotest.(check int) "one characterization on this domain" 1 misses;
      Alcotest.(check int) "published alongside" 1
        (Telemetry.Snapshot.counter_total snap "library.published");
      (* a fresh domain has a cold DLS cache, but the published snapshot
         means it adopts the entry instead of re-characterizing *)
      Domain.join (Domain.spawn (fun () -> ignore (Library.entry lib (Gate.Nand 2) vec)));
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "no second characterization"
        misses
        (Telemetry.Snapshot.counter_total snap "library.misses");
      Alcotest.(check int) "adopted from the published snapshot" 1
        (Telemetry.Snapshot.counter_total snap "library.shared_hits");
      (* a second lookup on the spawning domain is an ordinary cache hit *)
      ignore (Library.entry lib (Gate.Nand 2) vec);
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "warm hit stays local" 1
        (Telemetry.Snapshot.counter_total snap "library.hits"))

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "registration idempotent" `Quick
            test_registration_idempotent;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "incr and add" `Quick test_counter_add_and_incr;
          Alcotest.test_case "histogram moments" `Quick test_histogram_moments;
          Alcotest.test_case "time observes" `Quick test_time_observes_duration;
          Alcotest.test_case "reset" `Quick test_reset_zeroes;
          Alcotest.test_case "per-domain shards" `Quick test_per_domain_shards;
          Alcotest.test_case "snapshot JSON" `Quick test_snapshot_json_shape;
        ] );
      ( "library",
        [
          Alcotest.test_case "publish once across domains" `Quick
            test_library_publish_once;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans and JSON" `Quick test_trace_spans_and_json;
          Alcotest.test_case "disabled passthrough" `Quick
            test_trace_disabled_is_passthrough;
          Alcotest.test_case "string escaping" `Quick test_trace_escapes_strings;
        ] );
    ]
