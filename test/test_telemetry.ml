(* Unit tests for the telemetry subsystem: registry semantics, the enabled
   gate, per-domain sharding, gauges, labeled families, the observe guard,
   snapshot merging/diffing/serialization, Prometheus exposition, and the
   span tracer's Chrome trace-event output. *)

module Telemetry = Leakage_telemetry.Telemetry
module Trace = Leakage_telemetry.Trace
module Prometheus = Leakage_telemetry.Prometheus

let with_recording f =
  Telemetry.set_enabled true;
  Telemetry.reset ();
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) f

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

(* ------------------------------------------------------------- registry *)

let test_registration_idempotent () =
  with_recording (fun () ->
      let a = Telemetry.counter "t.reg" in
      let b = Telemetry.counter "t.reg" in
      Telemetry.incr a;
      Telemetry.incr b;
      let snap = Telemetry.Snapshot.take () in
      (* same name, same metric: both increments land on one counter *)
      Alcotest.(check int) "one counter" 2
        (Telemetry.Snapshot.counter_total snap "t.reg"))

let test_disabled_records_nothing () =
  Telemetry.set_enabled false;
  Telemetry.reset ();
  let c = Telemetry.counter "t.off" in
  let h = Telemetry.histogram "t.off_h" in
  Telemetry.incr c;
  Telemetry.add c 41;
  Telemetry.observe h 7.0;
  Alcotest.(check int) "timed thunk still runs" 9
    (Telemetry.time h (fun () -> 9));
  let snap = Telemetry.Snapshot.take () in
  Alcotest.(check int) "counter untouched" 0
    (Telemetry.Snapshot.counter_total snap "t.off");
  Alcotest.(check int) "histogram untouched" 0
    (Telemetry.Snapshot.histogram_count snap "t.off_h");
  Alcotest.(check bool) "snapshot empty" true (Telemetry.Snapshot.is_empty snap)

let test_counter_add_and_incr () =
  with_recording (fun () ->
      let c = Telemetry.counter "t.count" in
      Telemetry.incr c;
      Telemetry.add c 10;
      Telemetry.incr c;
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "total" 12
        (Telemetry.Snapshot.counter_total snap "t.count");
      Alcotest.(check int) "unknown name is 0" 0
        (Telemetry.Snapshot.counter_total snap "t.never"))

let test_histogram_moments () =
  with_recording (fun () ->
      let h = Telemetry.histogram "t.hist" in
      List.iter (Telemetry.observe h) [ 1.0; 3.0; 8.0; 100.0 ];
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "count" 4
        (Telemetry.Snapshot.histogram_count snap "t.hist");
      Alcotest.(check (float 1e-9)) "sum" 112.0
        (Telemetry.Snapshot.histogram_sum snap "t.hist"))

let test_time_observes_duration () =
  with_recording (fun () ->
      let h = Telemetry.histogram "t.timer" in
      Alcotest.(check int) "value through" 5 (Telemetry.time h (fun () -> 5));
      (match Telemetry.time h (fun () -> failwith "boom") with
       | _ -> Alcotest.fail "expected Failure"
       | exception Failure _ -> ());
      let snap = Telemetry.Snapshot.take () in
      (* both the normal return and the raise were timed *)
      Alcotest.(check int) "two observations" 2
        (Telemetry.Snapshot.histogram_count snap "t.timer");
      Alcotest.(check bool) "non-negative duration" true
        (Telemetry.Snapshot.histogram_sum snap "t.timer" >= 0.0))

let test_reset_zeroes () =
  with_recording (fun () ->
      let c = Telemetry.counter "t.reset" in
      Telemetry.incr c;
      Telemetry.reset ();
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "zero after reset" 0
        (Telemetry.Snapshot.counter_total snap "t.reset");
      (* the registration survives: the handle still works *)
      Telemetry.incr c;
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "handle still live" 1
        (Telemetry.Snapshot.counter_total snap "t.reset"))

let test_per_domain_shards () =
  with_recording (fun () ->
      let c = Telemetry.counter "t.sharded" in
      Telemetry.add c 5;
      let d =
        Domain.spawn (fun () ->
            Telemetry.add c 7;
            Domain.self ())
      in
      let worker_id = (Domain.join d :> int) in
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "merged total" 12
        (Telemetry.Snapshot.counter_total snap "t.sharded");
      let by_domain = Telemetry.Snapshot.counter_by_domain snap "t.sharded" in
      Alcotest.(check int) "two shards" 2 (List.length by_domain);
      Alcotest.(check (option int)) "worker shard kept its own 7" (Some 7)
        (List.assoc_opt worker_id by_domain))

let test_snapshot_json_shape () =
  with_recording (fun () ->
      let c = Telemetry.counter "t.json_c" in
      let h = Telemetry.histogram "t.json_h" in
      Telemetry.add c 3;
      Telemetry.observe h 2.5;
      let json = Telemetry.Snapshot.to_json (Telemetry.Snapshot.take ()) in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("contains " ^ needle) true
            (contains json needle))
        [ "\"counters\""; "\"counters_by_domain\""; "\"histograms\"";
          "\"t.json_c\": 3"; "\"t.json_h\""; "\"count\": 1"; "\"sum\": 2.5" ])

(* --------------------------------------------------------------- gauges *)

let test_gauge_set_add_merge () =
  with_recording (fun () ->
      let g = Telemetry.gauge "t.g" in
      Telemetry.set_gauge g 5.0;
      Telemetry.add_gauge g 2.0;
      Telemetry.add_gauge g (-1.0);
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check (float 1e-9)) "set plus adds" 6.0
        (Telemetry.Snapshot.gauge_value snap "t.g");
      Alcotest.(check (float 1e-9)) "unknown gauge is 0" 0.0
        (Telemetry.Snapshot.gauge_value snap "t.never"))

let test_gauge_untouched_absent () =
  with_recording (fun () ->
      let _g = Telemetry.gauge "t.g_silent" in
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check bool) "registered-but-untouched gauge not reported"
        false
        (List.mem_assoc "t.g_silent" (Telemetry.Snapshot.gauge_entries snap)))

let test_gauge_merge_across_domains () =
  with_recording (fun () ->
      let g = Telemetry.gauge "t.g_dom" in
      Telemetry.set_gauge g 100.0;
      Domain.join
        (Domain.spawn (fun () ->
             Telemetry.set_gauge g 3.0;
             Telemetry.add_gauge g 0.5));
      Telemetry.add_gauge g 0.25;
      let snap = Telemetry.Snapshot.take () in
      (* the worker's set is newer, so its base wins; adds from every
         domain still sum on top *)
      Alcotest.(check (float 1e-9)) "latest set plus all adds" 3.75
        (Telemetry.Snapshot.gauge_value snap "t.g_dom"))

(* ------------------------------------------------------ labeled families *)

let test_labeled_family_canonical () =
  with_recording (fun () ->
      let a =
        Telemetry.counter_with "t.req" [ ("op", "q"); ("tenant", "acme") ]
      in
      let b =
        Telemetry.counter_with "t.req" [ ("tenant", "acme"); ("op", "q") ]
      in
      Telemetry.incr a;
      Telemetry.incr b;
      Telemetry.add
        (Telemetry.counter_with "t.req" [ ("op", "q"); ("tenant", "zed") ])
        3;
      let snap = Telemetry.Snapshot.take () in
      let full = {|t.req{op="q",tenant="acme"}|} in
      (* label order is canonicalized, so both handles hit one metric *)
      Alcotest.(check int) "same member regardless of label order" 2
        (Telemetry.Snapshot.counter_total snap full);
      Alcotest.(check int) "sibling member separate" 3
        (Telemetry.Snapshot.counter_total snap {|t.req{op="q",tenant="zed"}|});
      let base, labels = Telemetry.Snapshot.base_and_labels snap full in
      Alcotest.(check string) "base recovered" "t.req" base;
      Alcotest.(check (list (pair string string))) "labels recovered"
        [ ("op", "q"); ("tenant", "acme") ]
        labels;
      let unl_base, unl_labels =
        Telemetry.Snapshot.base_and_labels snap "t.plain"
      in
      Alcotest.(check string) "unlabeled base is itself" "t.plain" unl_base;
      Alcotest.(check (list (pair string string))) "unlabeled has no labels" []
        unl_labels)

(* -------------------------------------------------------- observe guard *)

let test_observe_guard_drops_and_counts () =
  with_recording (fun () ->
      let h = Telemetry.histogram "t.guard" in
      Telemetry.observe h 1.5;
      Telemetry.observe h (-1.0);
      Telemetry.observe h Float.nan;
      Telemetry.observe h Float.infinity;
      let g = Telemetry.gauge "t.guard_g" in
      Telemetry.set_gauge g Float.nan;
      Telemetry.add_gauge g Float.neg_infinity;
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "only the finite sample lands" 1
        (Telemetry.Snapshot.histogram_count snap "t.guard");
      Alcotest.(check (float 1e-9)) "sum uncorrupted" 1.5
        (Telemetry.Snapshot.histogram_sum snap "t.guard");
      Alcotest.(check bool) "gauge untouched by dropped writes" false
        (List.mem_assoc "t.guard_g" (Telemetry.Snapshot.gauge_entries snap));
      Alcotest.(check int) "every drop counted" 5
        (Telemetry.Snapshot.counter_total snap
           "telemetry.dropped_observations"))

(* -------------------------------------------------------- diff, quantile *)

let mk_snapshot ?(taken_at = 0.0) ?(counters = []) ?(gauges = [])
    ?(histograms = []) ?(meta = []) () =
  Telemetry.Snapshot.make ~taken_at ~counters ~gauges ~histograms ~meta

let mk_hist ?(min = 0.0) ?(max = 0.0) ~sum pairs =
  let buckets = Array.make Telemetry.Snapshot.n_buckets 0 in
  List.iter (fun (b, n) -> buckets.(b) <- n) pairs;
  let count = List.fold_left (fun acc (_, n) -> acc + n) 0 pairs in
  { Telemetry.Snapshot.count; sum; min; max; buckets }

let test_diff_windows_and_clamps () =
  let older =
    mk_snapshot ~taken_at:10.0
      ~counters:[ ("steady", 3, [ (0, 3) ]); ("reset", 10, [ (0, 10) ]) ]
      ~histograms:[ ("h", mk_hist ~sum:50.0 ~min:1.0 ~max:9.0 [ (0, 2); (4, 3) ]) ]
      ()
  in
  let newer =
    mk_snapshot ~taken_at:12.0
      ~counters:[ ("steady", 10, [ (0, 10) ]); ("reset", 4, [ (0, 4) ]) ]
      ~gauges:[ ("level", 7.5) ]
      ~histograms:[ ("h", mk_hist ~sum:7.0 ~min:0.5 ~max:3.0 [ (0, 1) ]) ]
      ()
  in
  let d = Telemetry.Snapshot.diff ~newer ~older in
  Alcotest.(check int) "window delta" 7
    (Telemetry.Snapshot.counter_total d "steady");
  (* a counter reset between snapshots clamps at zero, never negative *)
  Alcotest.(check int) "reset clamps to zero" 0
    (Telemetry.Snapshot.counter_total d "reset");
  Alcotest.(check int) "histogram reset clamps too" 0
    (Telemetry.Snapshot.histogram_count d "h");
  Alcotest.(check (float 1e-9)) "histogram sum clamps too" 0.0
    (Telemetry.Snapshot.histogram_sum d "h");
  (* gauges are levels, not totals: the newer value passes through *)
  Alcotest.(check (float 1e-9)) "gauge from newer" 7.5
    (Telemetry.Snapshot.gauge_value d "level");
  Alcotest.(check (float 1e-9)) "stamped with newer time" 12.0
    (Telemetry.Snapshot.taken_at d)

let test_quantile_buckets () =
  (* 50 observations at <= 1, 50 in (4, 8] *)
  let h = mk_hist ~sum:300.0 ~min:0.5 ~max:7.0 [ (0, 50); (3, 50) ] in
  Alcotest.(check (float 1e-9)) "p50 hits the first bucket edge" 1.0
    (Telemetry.Snapshot.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p99 clamps to the observed max" 7.0
    (Telemetry.Snapshot.quantile h 0.99);
  Alcotest.(check (float 1e-9)) "empty histogram is 0" 0.0
    (Telemetry.Snapshot.quantile (mk_hist ~sum:0.0 []) 0.5)

(* ----------------------------------------------------------- prometheus *)

let test_prometheus_roundtrip_with_hostile_labels () =
  with_recording (fun () ->
      let hostile = "a\"b\\c\nd" in
      let h = Telemetry.histogram_with "t.lat" [ ("tenant", hostile) ] in
      List.iter (Telemetry.observe h) [ 0.5; 3.0; 100.0 ];
      Telemetry.incr
        (Telemetry.counter_with "t.hits" [ ("tenant", hostile) ]);
      Telemetry.set_gauge (Telemetry.gauge "t.level.dotted") 4.25;
      let text = Prometheus.render (Telemetry.Snapshot.take ()) in
      let families = Prometheus.parse text in
      Alcotest.(check (list string)) "histograms structurally valid" []
        (Prometheus.validate_histograms families);
      (* dots sanitize to underscores *)
      (match Prometheus.find families "t_level_dotted" with
       | Some { Prometheus.fam_type = "gauge"; samples = [ s ]; _ } ->
         Alcotest.(check (float 1e-9)) "gauge value" 4.25 s.Prometheus.value
       | _ -> Alcotest.fail "t_level_dotted missing or malformed");
      (* the hostile label value survives escape -> parse unchanged; the
         counter family is TYPEd under its suffixed exposition name *)
      (match Prometheus.find families "t_hits_total" with
       | Some { Prometheus.fam_type = "counter"; samples = [ s ]; _ } ->
         Alcotest.(check (option string)) "label round-trips" (Some hostile)
           (List.assoc_opt "tenant" s.Prometheus.labels);
         Alcotest.(check string) "counter suffix" "t_hits_total"
           s.Prometheus.name
       | _ -> Alcotest.fail "t_hits missing or malformed");
      (match Prometheus.find families "t_lat" with
       | Some { Prometheus.fam_type = "histogram"; samples; _ } ->
         let count =
           List.find_opt
             (fun (s : Prometheus.sample) -> s.name = "t_lat_count")
             samples
         in
         Alcotest.(check (option (float 1e-9))) "_count present" (Some 3.0)
           (Option.map (fun (s : Prometheus.sample) -> s.value) count)
       | _ -> Alcotest.fail "t_lat missing or malformed"))

let test_prometheus_empty_snapshot () =
  let text = Prometheus.render (mk_snapshot ()) in
  Alcotest.(check (list string)) "no families" []
    (List.map
       (fun f -> f.Prometheus.fam_name)
       (Prometheus.parse text))

let test_prometheus_parser_strict () =
  let bad text =
    match Prometheus.parse text with
    | _ -> Alcotest.fail "expected Parse_error"
    | exception Prometheus.Parse_error _ -> ()
  in
  bad "no newline at end";
  bad "name{l=\"unterminated} 1\n";
  bad "name 1 trailing garbage here\n";
  bad "name{l=\"bad\\q escape\"} 1\n";
  bad "1starts_with_digit 2\n";
  (* a well-formed family parses and keeps escaped values decoded *)
  let families =
    Prometheus.parse
      "# TYPE x_total counter\nx_total{a=\"p\\\\q\\\"r\\ns\"} 4\n"
  in
  match families with
  | [ { Prometheus.fam_name = "x_total"; fam_type = "counter"; samples = [ s ] } ] ->
    Alcotest.(check (option string)) "decoded label" (Some "p\\q\"r\ns")
      (List.assoc_opt "a" s.Prometheus.labels)
  | _ -> Alcotest.fail "unexpected parse"

(* ---------------------------------------------------------------- trace *)

let test_trace_spans_and_json () =
  Trace.start ();
  let v =
    Trace.with_span ~cat:"test" ~args:[ ("k", "v") ] "outer" (fun () ->
        Trace.with_span "inner" (fun () -> 21 * 2))
  in
  Trace.instant "marker";
  (match Trace.with_span "raising" (fun () -> failwith "boom") with
   | _ -> Alcotest.fail "expected Failure"
   | exception Failure _ -> ());
  Trace.stop ();
  Alcotest.(check int) "value through spans" 42 v;
  (* outer + inner + raising + instant *)
  Alcotest.(check int) "events recorded" 4 (Trace.event_count ());
  let json = Trace.to_json () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains json needle))
    [ "\"traceEvents\""; "\"displayTimeUnit\""; "thread_name";
      "\"outer\""; "\"inner\""; "\"raising\""; "\"marker\"";
      "\"ph\": \"X\""; "\"ph\": \"i\""; "\"k\": \"v\"" ]

let test_trace_disabled_is_passthrough () =
  Trace.start ();
  Trace.stop ();
  (* recorded-but-stopped state: spans run their thunk, record nothing *)
  Alcotest.(check int) "thunk runs" 3 (Trace.with_span "off" (fun () -> 3));
  Alcotest.(check int) "nothing recorded" 0 (Trace.event_count ());
  (* start clears any previous events *)
  Trace.start ();
  Trace.instant "one";
  Trace.stop ();
  Alcotest.(check int) "fresh after start" 1 (Trace.event_count ())

let test_trace_escapes_strings () =
  Trace.start ();
  Trace.instant ~args:[ ("path", "a\"b\\c\nd") ] "quote\"name";
  Trace.stop ();
  let json = Trace.to_json () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains json needle))
    [ {|quote\"name|}; {|a\"b\\c\nd|} ]

(* --------------------------------------------------- publish-once library *)

module Library = Leakage_core.Library
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Params = Leakage_device.Params

let test_library_publish_once () =
  with_recording (fun () ->
      let lib = Library.create ~device:Params.d25 ~temp:300.0 () in
      let vec = [| Logic.Zero; Logic.One |] in
      ignore (Library.entry lib (Gate.Nand 2) vec);
      let snap = Telemetry.Snapshot.take () in
      let misses = Telemetry.Snapshot.counter_total snap "library.misses" in
      Alcotest.(check int) "one characterization on this domain" 1 misses;
      Alcotest.(check int) "published alongside" 1
        (Telemetry.Snapshot.counter_total snap "library.published");
      (* a fresh domain has a cold DLS cache, but the published snapshot
         means it adopts the entry instead of re-characterizing *)
      Domain.join (Domain.spawn (fun () -> ignore (Library.entry lib (Gate.Nand 2) vec)));
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "no second characterization"
        misses
        (Telemetry.Snapshot.counter_total snap "library.misses");
      Alcotest.(check int) "adopted from the published snapshot" 1
        (Telemetry.Snapshot.counter_total snap "library.shared_hits");
      (* a second lookup on the spawning domain is an ordinary cache hit *)
      ignore (Library.entry lib (Gate.Nand 2) vec);
      let snap = Telemetry.Snapshot.take () in
      Alcotest.(check int) "warm hit stays local" 1
        (Telemetry.Snapshot.counter_total snap "library.hits"))

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "registration idempotent" `Quick
            test_registration_idempotent;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "incr and add" `Quick test_counter_add_and_incr;
          Alcotest.test_case "histogram moments" `Quick test_histogram_moments;
          Alcotest.test_case "time observes" `Quick test_time_observes_duration;
          Alcotest.test_case "reset" `Quick test_reset_zeroes;
          Alcotest.test_case "per-domain shards" `Quick test_per_domain_shards;
          Alcotest.test_case "snapshot JSON" `Quick test_snapshot_json_shape;
        ] );
      ( "gauges",
        [
          Alcotest.test_case "set and add merge" `Quick
            test_gauge_set_add_merge;
          Alcotest.test_case "untouched gauge absent" `Quick
            test_gauge_untouched_absent;
          Alcotest.test_case "merge across domains" `Quick
            test_gauge_merge_across_domains;
        ] );
      ( "labels",
        [
          Alcotest.test_case "canonical families" `Quick
            test_labeled_family_canonical;
        ] );
      ( "guard",
        [
          Alcotest.test_case "bad observations dropped and counted" `Quick
            test_observe_guard_drops_and_counts;
        ] );
      ( "windows",
        [
          Alcotest.test_case "diff deltas and reset clamp" `Quick
            test_diff_windows_and_clamps;
          Alcotest.test_case "bucket quantiles" `Quick test_quantile_buckets;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "render/parse round-trip" `Quick
            test_prometheus_roundtrip_with_hostile_labels;
          Alcotest.test_case "empty snapshot" `Quick
            test_prometheus_empty_snapshot;
          Alcotest.test_case "strict parser" `Quick
            test_prometheus_parser_strict;
        ] );
      ( "library",
        [
          Alcotest.test_case "publish once across domains" `Quick
            test_library_publish_once;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans and JSON" `Quick test_trace_spans_and_json;
          Alcotest.test_case "disabled passthrough" `Quick
            test_trace_disabled_is_passthrough;
          Alcotest.test_case "string escaping" `Quick test_trace_escapes_strings;
        ] );
    ]
