(* MC-differential validation of the analytic variance propagation.

   The closed form must agree with the sampler it replaces: on every test
   circuit the analytic mean and σ of each component sit within 3 standard
   errors of a 10k-sample Monte-Carlo run, the inner table primitive
   matches a brute-force quadrature oracle, the table λ matches finite
   differences (through the same [Diff_harness.Fd] oracle the device jets
   use), and the estimator-facing entry points honor their determinism
   contracts: bit-identical across pool sizes, across construction order
   of digest-equal netlists, and between a refreshed incremental session
   and a fresh pass. *)

module Params = Leakage_device.Params
module Variation = Leakage_device.Variation
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report
module Characterize = Leakage_core.Characterize
module Library = Leakage_core.Library
module Sensitivity = Leakage_core.Sensitivity
module Statistical = Leakage_core.Statistical
module Incremental = Leakage_incremental.Incremental
module Edit = Leakage_incremental.Edit
module Rng = Leakage_numeric.Rng
module Stats = Leakage_numeric.Stats
module Interp = Leakage_numeric.Interp
module Fd = Diff_harness.Fd

let device = Params.d25
let temp = 300.0

(* same coarse grid as diff_harness, so the characterization cache stays
   warm across the test executable *)
let lib =
  Library.create
    ~grid:{ Characterize.max_current = 3.0e-6; points = 5 }
    ~device ~temp ()

let sigmas = Variation.paper_sigmas

let qtest ?(count = 25) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------- circuits *)

let inv_chain n =
  let b = Netlist.Builder.create "chain" in
  let net = ref (Netlist.Builder.input b) in
  for _ = 1 to n do
    net := Netlist.Builder.gate b Gate.Inv [| !net |]
  done;
  Netlist.Builder.mark_output b !net;
  Netlist.Builder.finish b

let nand_tree depth =
  let b = Netlist.Builder.create "tree" in
  let rec level nets =
    match nets with
    | [ last ] ->
      Netlist.Builder.mark_output b last;
      Netlist.Builder.finish b
    | _ ->
      let rec pair = function
        | x :: y :: rest ->
          Netlist.Builder.gate b (Gate.Nand 2) [| x; y |] :: pair rest
        | [ x ] -> [ Netlist.Builder.gate b Gate.Inv [| x |] ]
        | [] -> []
      in
      level (pair nets)
  in
  level (List.init (1 lsl depth) (fun _ -> Netlist.Builder.input b))

let random_pattern seed nl =
  Logic.random_vector (Rng.create seed) (Array.length (Netlist.inputs nl))

let analytic ?(sigmas = sigmas) nl pattern =
  let _, _, res =
    Sensitivity.estimate_totals ~fallback_samples:0 ~sigmas lib nl pattern
  in
  res

(* ------------------------------------------------- MC-differential core *)

let central_moment4 values mean =
  let acc = ref 0.0 in
  Array.iter
    (fun v ->
      let d = v -. mean in
      acc := !acc +. (d *. d *. d *. d))
    values;
  !acc /. float_of_int (Array.length values)

(* Analytic mean and σ of all four components, loaded and baseline, must
   land within [bound] standard errors of an [samples]-draw Monte-Carlo.
   SE(mean) = s/√n; SE(σ) = √(m₄ − s⁴)/(2 s √n) (asymptotic, kurtosis
   corrected — these totals are heavy-tailed, the Gaussian σ²/2n formula
   would overstate the precision). *)
let check_against_mc ~name ~samples ~seed ~bound nl pattern =
  let res = analytic nl pattern in
  let mc = Statistical.run ~n_samples:samples ~seed ~sigmas lib nl pattern in
  List.iter
    (fun (side, base) ->
      let st =
        if base then res.Sensitivity.baseline else res.Sensitivity.loaded
      in
      List.iter
        (fun (comp, pick, (cs : Sensitivity.component_stat)) ->
          let v =
            Array.map
              (fun (s : Statistical.sample_totals) ->
                pick
                  (if base then s.Statistical.no_loading
                   else s.Statistical.with_loading))
              mc.Statistical.samples
          in
          let n = float_of_int (Array.length v) in
          let m = Stats.mean v and s = Stats.std v in
          let se_mean = s /. sqrt n in
          let m4 = central_moment4 v m in
          let se_sigma =
            sqrt (Float.max 0.0 (m4 -. (s *. s *. s *. s)))
            /. (2.0 *. s *. sqrt n)
          in
          let z_mean = (cs.Sensitivity.mean -. m) /. se_mean in
          let z_sigma = (cs.Sensitivity.sigma -. s) /. se_sigma in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s %s: z_mean=%.2f z_sigma=%.2f (bound %.1f)"
               name side comp z_mean z_sigma bound)
            true
            (Float.abs z_mean <= bound && Float.abs z_sigma <= bound))
        [
          ("isub", (fun c -> c.Report.isub), st.Sensitivity.s_isub);
          ("igate", (fun c -> c.Report.igate), st.Sensitivity.s_igate);
          ("ibtbt", (fun c -> c.Report.ibtbt), st.Sensitivity.s_ibtbt);
          ("total", Report.total, st.Sensitivity.s_total);
        ])
    [ ("loaded", false); ("baseline", true) ]

let test_mc_inv_chain () =
  let nl = inv_chain 8 in
  check_against_mc ~name:"chain8" ~samples:10_000 ~seed:101 ~bound:3.0 nl
    (random_pattern 1 nl)

let test_mc_nand_tree () =
  let nl = nand_tree 4 in
  check_against_mc ~name:"tree16" ~samples:10_000 ~seed:202 ~bound:3.0 nl
    (random_pattern 2 nl)

let test_mc_random_dag () =
  let nl = Diff_harness.random_netlist (Rng.create 7) in
  check_against_mc ~name:"dag" ~samples:10_000 ~seed:303 ~bound:3.0 nl
    (random_pattern 3 nl)

(* ------------------------------------------------- table-moment oracle *)

(* Brute-force oracle for E[exp(T(v))], v ~ N(mu, s²): composite Simpson
   over mu ± 12s, split at the table nodes so no panel straddles a kink.
   The clamped integrand is bounded by e^{max ys}, so truncating at 12s
   loses ~1e-32 of the mass; within each smooth piece 2000 panels put the
   quadrature error far below the comparison tolerance even for the
   steepest generated slopes. *)
let oracle_expect_exp ~xs ~ys ~mu ~s =
  let g = Interp.grid1d ~xs ~ys in
  let two_pi = 8.0 *. atan 1.0 in
  let f v =
    exp (Interp.eval1d g v)
    *. exp (-.((v -. mu) *. (v -. mu)) /. (2.0 *. s *. s))
    /. (s *. sqrt two_pi)
  in
  let lo = mu -. (12.0 *. s) and hi = mu +. (12.0 *. s) in
  let breaks =
    lo :: List.filter (fun x -> x > lo && x < hi) (Array.to_list xs) @ [ hi ]
  in
  let simpson a b =
    let n = 2000 in
    let h = (b -. a) /. float_of_int n in
    let acc = ref (f a +. f b) in
    for i = 1 to n - 1 do
      let w = if i land 1 = 1 then 4.0 else 2.0 in
      acc := !acc +. (w *. f (a +. (float_of_int i *. h)))
    done;
    !acc *. h /. 3.0
  in
  let rec pieces = function
    | a :: (b :: _ as rest) -> simpson a b +. pieces rest
    | _ -> 0.0
  in
  pieces breaks

let gen_table =
  QCheck2.Gen.(
    let* n = int_range 2 6 in
    let* raw = array_size (return n) (float_range (-0.18) 0.18) in
    let* ys = array_size (return n) (float_range (-3.0) 3.0) in
    let* mu = float_range (-0.3) 0.3 in
    let* s = float_range 0.005 0.2 in
    let xs = Array.copy raw in
    Array.sort compare xs;
    (* enforce a minimal node gap so the grid is strictly increasing *)
    for i = 1 to n - 1 do
      if xs.(i) <= xs.(i - 1) +. 1e-4 then xs.(i) <- xs.(i - 1) +. 1e-4
    done;
    return (xs, ys, mu, s))

let prop_expect_exp_table_matches_oracle =
  qtest ~count:60 "expect_exp_table = quadrature oracle" gen_table
    (fun (xs, ys, mu, s) ->
      let a = Sensitivity.expect_exp_table ~xs ~ys ~mu ~s in
      let o = oracle_expect_exp ~xs ~ys ~mu ~s in
      Float.abs (a -. o) <= 1e-4 *. Float.max a o)

let test_expect_exp_degenerate_point () =
  let xs = [| -0.1; 0.0; 0.1 |] and ys = [| -1.0; 0.5; 2.0 |] in
  let g = Interp.grid1d ~xs ~ys in
  List.iter
    (fun mu ->
      Alcotest.(check (float 1e-15))
        (Printf.sprintf "s=0 at mu=%g is a point evaluation" mu)
        (exp (Interp.eval1d g mu))
        (Sensitivity.expect_exp_table ~xs ~ys ~mu ~s:0.0))
    [ -0.25; -0.05; 0.0; 0.07; 0.3 ]

let test_expect_exp_constant_table () =
  (* a flat table is deterministic: E[exp c] = exp c for any spread *)
  let xs = [| -0.1; 0.1 |] and ys = [| 0.7; 0.7 |] in
  Alcotest.(check (float 1e-12))
    "flat table ignores s" (exp 0.7)
    (Sensitivity.expect_exp_table ~xs ~ys ~mu:0.02 ~s:0.5)

let test_vth_log_slope_matches_fd () =
  (* λ really is the log-slope of the tabulated response the sampler
     interpolates, component by component *)
  let entry = Library.entry lib (Gate.Nand 2) (Logic.vector_of_string "01") in
  let slope = Characterize.vth_log_slope entry in
  let at pick dv = pick (Characterize.vth_factor entry dv) in
  List.iter
    (fun (name, pick, analytic) ->
      Fd.check_grad ~tol:1e-6 ~name:("lambda " ^ name) ~h:1e-4
        (fun dv -> log (at pick dv))
        0.0 analytic)
    [
      ("isub", (fun c -> c.Report.isub), slope.Report.isub);
      ("igate", (fun c -> c.Report.igate), slope.Report.igate);
      ("ibtbt", (fun c -> c.Report.ibtbt), slope.Report.ibtbt);
    ]

(* --------------------------------------------------- inter/intra split *)

let scale_sigmas k =
  {
    Variation.sigma_l = k *. sigmas.Variation.sigma_l;
    sigma_tox = k *. sigmas.Variation.sigma_tox;
    sigma_vdd = k *. sigmas.Variation.sigma_vdd;
    sigma_vth_inter = k *. sigmas.Variation.sigma_vth_inter;
    sigma_vth_intra = k *. sigmas.Variation.sigma_vth_intra;
  }

let each_stat res f =
  List.iter
    (fun (side, st) ->
      List.iter
        (fun (comp, cs) -> f (side ^ " " ^ comp) cs)
        [
          ("isub", st.Sensitivity.s_isub);
          ("igate", st.Sensitivity.s_igate);
          ("ibtbt", st.Sensitivity.s_ibtbt);
          ("total", st.Sensitivity.s_total);
        ])
    [
      ("loaded", res.Sensitivity.loaded);
      ("baseline", res.Sensitivity.baseline);
    ]

(* The split is a genuine decomposition: each mechanism alone spreads at
   most marginally more than both together (intra-averaging smooths the
   table, so Jensen can shave a fraction of a percent off the joint σ),
   and their RSS recovers σ up to the multiplicative inter×intra
   interaction the exact moments keep — super-additivity reaching ~13% at
   the paper's sigmas, vanishing as the sigmas shrink. *)
let prop_split_decomposes =
  qtest ~count:20 "sigma_inter/intra decompose sigma"
    QCheck2.Gen.(pair (float_range 0.1 1.0) (int_range 0 10_000))
    (fun (k, seed) ->
      let nl = Diff_harness.random_netlist (Rng.create seed) in
      let pattern = random_pattern (seed + 1) nl in
      let res = analytic ~sigmas:(scale_sigmas k) nl pattern in
      let ok = ref true in
      each_stat res (fun _ (cs : Sensitivity.component_stat) ->
          let s = cs.Sensitivity.sigma in
          let rss =
            sqrt
              ((cs.Sensitivity.sigma_inter *. cs.Sensitivity.sigma_inter)
              +. (cs.Sensitivity.sigma_intra *. cs.Sensitivity.sigma_intra))
          in
          ok :=
            !ok
            && cs.Sensitivity.sigma_inter <= s *. 1.02
            && cs.Sensitivity.sigma_intra <= s *. 1.02
            && rss <= s *. 1.02
            && s <= 1.25 *. rss);
      !ok)

let test_restricted_sigmas_degenerate () =
  let nl = nand_tree 3 in
  let pattern = random_pattern 4 nl in
  let intra = analytic ~sigmas:(Variation.intra_only sigmas) nl pattern in
  each_stat intra (fun name (cs : Sensitivity.component_stat) ->
      Alcotest.(check bool)
        (name ^ ": intra-only kills sigma_inter")
        true
        (cs.Sensitivity.sigma_inter <= 1e-9 *. cs.Sensitivity.sigma
        && cs.Sensitivity.sigma = cs.Sensitivity.sigma_intra));
  let inter = analytic ~sigmas:(Variation.inter_only sigmas) nl pattern in
  each_stat inter (fun name (cs : Sensitivity.component_stat) ->
      Alcotest.(check bool)
        (name ^ ": inter-only kills sigma_intra")
        true
        (cs.Sensitivity.sigma_intra <= 1e-9 *. cs.Sensitivity.sigma
        && cs.Sensitivity.sigma = cs.Sensitivity.sigma_inter))

(* ---------------------------------------------------------- determinism *)

let test_pool_sizes_bit_identical () =
  let nl = nand_tree 5 in
  let pattern = random_pattern 5 nl in
  let reference =
    Sensitivity.estimate_totals ~fallback_samples:0 ~sigmas lib nl pattern
  in
  List.iter2
    (fun jobs pool ->
      let r =
        Sensitivity.estimate_totals ~pool ~fallback_samples:0 ~sigmas lib nl
          pattern
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d bit-identical" jobs)
        true
        (Stdlib.compare reference r = 0))
    Diff_harness.job_counts
    (Lazy.force Diff_harness.pools)

(* Two construction orders of the same circuit: same canonical digest, and
   every reported digit of the variance result identical — the analysis
   depends only on the multiset of per-gate rows, never on gate ids. *)
let iso_netlist flip =
  let b = Netlist.Builder.create (if flip then "iso-a" else "iso-b") in
  let i0 = Netlist.Builder.input b in
  let i1 = Netlist.Builder.input b in
  let mk_inv () = Netlist.Builder.gate b Gate.Inv [| i0 |] in
  let mk_nand () = Netlist.Builder.gate b (Gate.Nand 2) [| i0; i1 |] in
  let x, y =
    if flip then
      let y = mk_nand () in
      let x = mk_inv () in
      (x, y)
    else
      let x = mk_inv () in
      let y = mk_nand () in
      (x, y)
  in
  let z = Netlist.Builder.gate b (Gate.Nor 2) [| x; y |] in
  let w = Netlist.Builder.gate b Gate.Inv [| y |] in
  Netlist.Builder.mark_output b z;
  Netlist.Builder.mark_output b w;
  Netlist.Builder.finish b

let test_construction_order_invariant () =
  let a = iso_netlist false and b = iso_netlist true in
  Alcotest.(check string)
    "same canonical digest" (Netlist.digest a) (Netlist.digest b);
  let pattern = Logic.vector_of_string "01" in
  Alcotest.(check bool)
    "bit-identical variance result" true
    (Stdlib.compare (analytic a pattern) (analytic b pattern) = 0)

let test_incremental_sigma_matches_fresh () =
  let nl = Diff_harness.random_netlist (Rng.create 11) in
  let pattern = random_pattern 12 nl in
  let s = Incremental.create lib nl pattern in
  let rng = Rng.create 13 in
  for _ = 1 to 3 do
    Incremental.apply s
      (Edit.random_resize ~strengths:[| 0.5; 1.0; 2.0 |] rng
         (Incremental.current_netlist s))
  done;
  Incremental.apply s (Edit.random_set_input rng (Incremental.current_netlist s));
  Incremental.refresh s;
  let from_session = Incremental.sigma ~sigmas s in
  let _, _, fresh =
    Sensitivity.estimate_totals ~fallback_samples:0 ~sigmas lib
      (Incremental.current_netlist s)
      (Incremental.pattern s)
  in
  Alcotest.(check bool)
    "refreshed session sigma = fresh pass" true
    (Stdlib.compare from_session fresh = 0)

(* ------------------------------------------------------------- fallback *)

let test_geometry_flag_triggers_mc_fallback () =
  (* A wild length sigma pushes the ±2σ corner against the geometry clamp,
     far outside the quadratic log model: the component must flag, and the
     default entry point must swap in the MC fallback (marked from_mc)
     while fallback_samples:0 keeps the flagged closed form. *)
  let wild = { sigmas with Variation.sigma_l = 0.25 *. device.Params.length } in
  let nl = inv_chain 4 in
  let pattern = random_pattern 6 nl in
  let _, _, closed =
    Sensitivity.estimate_totals ~fallback_samples:0 ~sigmas:wild lib nl pattern
  in
  Alcotest.(check bool) "flag trips" true (Sensitivity.flagged closed);
  each_stat closed (fun name (cs : Sensitivity.component_stat) ->
      Alcotest.(check bool) (name ^ ": no MC when disabled") false
        cs.Sensitivity.from_mc);
  let _, _, fb =
    Sensitivity.estimate_totals ~fallback_samples:500 ~fallback_seed:5
      ~sigmas:wild lib nl pattern
  in
  Alcotest.(check bool) "still reported as flagged" true
    (Sensitivity.flagged fb);
  let flagged_of = function
    | "isub" -> fb.Sensitivity.flagged_isub
    | "igate" -> fb.Sensitivity.flagged_igate
    | "ibtbt" -> fb.Sensitivity.flagged_ibtbt
    | _ -> Sensitivity.flagged fb (* total inherits any flag *)
  in
  each_stat fb (fun name (cs : Sensitivity.component_stat) ->
      let comp = List.nth (String.split_on_char ' ' name) 1 in
      Alcotest.(check bool)
        (name ^ ": from_mc iff flagged")
        (flagged_of comp) cs.Sensitivity.from_mc;
      Alcotest.(check bool)
        (name ^ ": finite and positive")
        true
        (Float.is_finite cs.Sensitivity.mean
        && Float.is_finite cs.Sensitivity.sigma
        && cs.Sensitivity.mean > 0.0))

let () =
  Alcotest.run "sensitivity"
    [
      ( "mc-differential",
        [
          Alcotest.test_case "inverter chain" `Slow test_mc_inv_chain;
          Alcotest.test_case "nand tree" `Slow test_mc_nand_tree;
          Alcotest.test_case "random dag" `Slow test_mc_random_dag;
        ] );
      ( "table moments",
        [
          prop_expect_exp_table_matches_oracle;
          Alcotest.test_case "s=0 point evaluation" `Quick
            test_expect_exp_degenerate_point;
          Alcotest.test_case "flat table" `Quick test_expect_exp_constant_table;
          Alcotest.test_case "lambda vs FD" `Quick test_vth_log_slope_matches_fd;
        ] );
      ( "inter/intra",
        [
          prop_split_decomposes;
          Alcotest.test_case "restricted sigmas degenerate" `Quick
            test_restricted_sigmas_degenerate;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pool sizes" `Quick test_pool_sizes_bit_identical;
          Alcotest.test_case "construction order" `Quick
            test_construction_order_invariant;
          Alcotest.test_case "incremental vs fresh" `Quick
            test_incremental_sigma_matches_fresh;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "geometry flag -> MC" `Quick
            test_geometry_flag_triggers_mc_fallback;
        ] );
    ]
