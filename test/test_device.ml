(* Tests of the compact device models: conservation laws, monotonicities and
   the calibrated regimes the paper's analysis relies on. *)

module Physics = Leakage_device.Physics
module Params = Leakage_device.Params
module Model = Leakage_device.Model
module Variation = Leakage_device.Variation
module Rng = Leakage_numeric.Rng
module Stats = Leakage_numeric.Stats

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let d25 = Params.d25
let d50 = Params.d50
let vdd = d25.Params.vdd

(* -------------------------------------------------------------- Physics *)

let test_thermal_voltage () =
  check_float ~eps:1e-4 "vT(300K)" 0.02585 (Physics.thermal_voltage 300.0)

let test_thermal_voltage_scales () =
  check_float ~eps:1e-12 "linear in T"
    (2.0 *. Physics.thermal_voltage 300.0)
    (Physics.thermal_voltage 600.0)

let test_bandgap_narrows () =
  Alcotest.(check bool) "Eg shrinks with T" true
    (Physics.bandgap 400.0 < Physics.bandgap 300.0);
  check_float ~eps:0.02 "Eg(300) ~ 1.12 eV" 1.12 (Physics.bandgap 300.0)

let test_celsius_roundtrip () =
  check_float "roundtrip" 85.0
    (Physics.kelvin_to_celsius (Physics.celsius_to_kelvin 85.0))

let test_nanoamps () =
  check_float "A to nA" 5.0 (Physics.amps_to_nanoamps 5e-9);
  check_float "nA to A" 5e-9 (Physics.nanoamps_to_amps 5.0)

(* --------------------------------------------------------------- Params *)

let test_fet_selector () =
  Alcotest.(check bool) "nmos" true (Params.fet d25 Params.Nmos == d25.Params.nmos);
  Alcotest.(check bool) "pmos" true (Params.fet d25 Params.Pmos == d25.Params.pmos)

let test_variants_exist () =
  List.iter
    (fun (d : Params.t) ->
      Alcotest.(check bool) ("positive vdd " ^ d.Params.name) true
        (d.Params.vdd > 0.0))
    [ d25; d50; Params.d25_s; Params.d25_g; Params.d25_jn ]

let test_with_halo_rejects_nonpositive () =
  Alcotest.check_raises "bad halo"
    (Invalid_argument "Params.with_halo: dose must be positive") (fun () ->
      ignore (Params.with_halo d25 0.0))

let test_with_vth_shift () =
  let d = Params.with_vth_shift d25 0.05 in
  check_float "nmos shifted" (d25.Params.nmos.Params.vth0 +. 0.05)
    d.Params.nmos.Params.vth0;
  check_float "pmos shifted" (d25.Params.pmos.Params.vth0 +. 0.05)
    d.Params.pmos.Params.vth0

let test_variant_totals_comparable () =
  let total d =
    let s, g, b = Model.off_state_leakage d Params.Nmos ~w:1.0 ~temp:300.0 ~vdd in
    s +. g +. b
  in
  let base = total d25 in
  List.iter
    (fun d ->
      let r = total d /. base in
      if r < 0.25 || r > 4.0 then
        Alcotest.failf "variant %s total off by %gx" d.Params.name r)
    [ Params.d25_s; Params.d25_g; Params.d25_jn ]

let test_variant_domination () =
  let shares d =
    Model.off_state_leakage d Params.Nmos ~w:1.0 ~temp:300.0 ~vdd
  in
  let s, g, b = shares Params.d25_s in
  Alcotest.(check bool) "D25-S sub dominated" true (s > g && s > b);
  let s', g', b' = shares Params.d25_jn in
  Alcotest.(check bool) "D25-JN junction dominated" true (b' > s' && b' > g');
  let _, g_g, _ = shares Params.d25_g in
  Alcotest.(check bool) "D25-G has the largest off-state gate term" true
    (g_g > g && g_g > g')

(* ---------------------------------------------------------------- Model *)

let test_terminal_conservation_nominal () =
  let t =
    Model.terminals d25 Params.Nmos ~w:1.0 ~temp:300.0
      { Model.vg = 0.3; vd = 0.7; vs = 0.1; vb = 0.0 }
  in
  check_float ~eps:1e-18 "KCL inside device" 0.0
    (t.Model.into_gate +. t.Model.into_drain +. t.Model.into_source
   +. t.Model.into_bulk)

let prop_terminal_conservation =
  qtest "terminal currents sum to zero for random biases"
    QCheck2.Gen.(
      tup4 (float_range (-0.2) 1.1) (float_range (-0.2) 1.1)
        (float_range (-0.2) 1.1)
        (float_bound_inclusive 1.0))
    (fun (vg, vd, vs, pol_pick) ->
      let pol = if pol_pick < 0.5 then Params.Nmos else Params.Pmos in
      let vb = match pol with Params.Nmos -> 0.0 | Params.Pmos -> vdd in
      let t = Model.terminals d25 pol ~w:1.5 ~temp:320.0 { Model.vg; vd; vs; vb } in
      let sum =
        t.Model.into_gate +. t.Model.into_drain +. t.Model.into_source
        +. t.Model.into_bulk
      in
      let scale =
        abs_float t.Model.into_gate +. abs_float t.Model.into_drain
        +. abs_float t.Model.into_source +. abs_float t.Model.into_bulk
        +. 1e-15
      in
      abs_float sum /. scale < 1e-9)

let prop_pmos_mirrors_nmos =
  qtest "PMOS components are the voltage reflection of an NMOS twin"
    QCheck2.Gen.(
      tup3 (float_range 0.0 0.9) (float_range 0.0 0.9) (float_range 0.0 0.9))
    (fun (vg, vd, vs) ->
      let cp =
        Model.components d25 Params.Pmos ~w:2.0 ~temp:300.0
          { Model.vg; vd; vs; vb = 0.0 }
      in
      let reflected = { Model.vg = -.vg; vd = -.vd; vs = -.vs; vb = 0.0 } in
      let swapped = { d25 with Params.nmos = d25.Params.pmos } in
      let cn = Model.components swapped Params.Nmos ~w:2.0 ~temp:300.0 reflected in
      let close a b = abs_float (a +. b) <= 1e-15 +. (1e-9 *. abs_float a) in
      close cp.Model.ids cn.Model.ids
      && close cp.Model.igso cn.Model.igso
      && close cp.Model.igdo cn.Model.igdo
      && close cp.Model.ibtbt_d cn.Model.ibtbt_d
      && close cp.Model.ibtbt_s cn.Model.ibtbt_s)

let test_subthreshold_increases_with_vgs () =
  let ids vg =
    (Model.components d25 Params.Nmos ~w:1.0 ~temp:300.0
       { Model.vg; vd = vdd; vs = 0.0; vb = 0.0 }).Model.ids
  in
  Alcotest.(check bool) "monotone in Vgs" true
    (ids 0.02 > ids 0.0 && ids 0.05 > ids 0.02)

let test_subthreshold_dibl () =
  let ids vd =
    (Model.components d25 Params.Nmos ~w:1.0 ~temp:300.0
       { Model.vg = 0.0; vd; vs = 0.0; vb = 0.0 }).Model.ids
  in
  Alcotest.(check bool) "DIBL raises leakage with Vds" true
    (ids 0.9 > ids 0.5 && ids 0.5 > ids 0.2)

let test_subthreshold_exponential_in_temp () =
  let sub temp =
    let s, _, _ = Model.off_state_leakage d50 Params.Nmos ~w:1.0 ~temp
        ~vdd:d50.Params.vdd in
    s
  in
  Alcotest.(check bool) "more than 3x per 60K" true
    (sub 360.0 /. sub 300.0 > 3.0)

let test_gate_leakage_flat_in_temp () =
  let gate temp =
    Model.gate_leakage
      (Model.components d25 Params.Nmos ~w:1.0 ~temp
         { Model.vg = vdd; vd = 0.0; vs = 0.0; vb = 0.0 })
  in
  let r = gate 400.0 /. gate 300.0 in
  Alcotest.(check bool) "less than 10% per 100K" true (r < 1.10 && r > 0.95)

let test_btbt_mild_in_temp () =
  let btbt temp =
    let _, _, b = Model.off_state_leakage d25 Params.Nmos ~w:1.0 ~temp ~vdd in
    b
  in
  let r = btbt 400.0 /. btbt 300.0 in
  Alcotest.(check bool) "marginal increase" true (r > 1.0 && r < 2.0)

let test_component_crossover_with_temp () =
  (* Fig 4c (50 nm device): gate + BTBT >= sub at 300 K; sub dominates hot. *)
  let s300, g300, b300 =
    Model.off_state_leakage d50 Params.Nmos ~w:1.0 ~temp:300.0
      ~vdd:d50.Params.vdd
  in
  Alcotest.(check bool) "room temperature: tunneling >= sub" true
    (g300 +. b300 >= s300);
  let s400, g400, b400 =
    Model.off_state_leakage d50 Params.Nmos ~w:1.0 ~temp:400.0
      ~vdd:d50.Params.vdd
  in
  Alcotest.(check bool) "hot: sub dominates" true (s400 > g400 && s400 > b400)

let test_halo_tradeoff () =
  (* Fig 4a: more halo -> less subthreshold, more BTBT, gate unchanged. *)
  let at halo =
    Model.off_state_leakage (Params.with_halo d25 halo) Params.Nmos ~w:1.0
      ~temp:300.0 ~vdd
  in
  let s_lo, g_lo, b_lo = at 0.7 in
  let s_hi, g_hi, b_hi = at 1.4 in
  Alcotest.(check bool) "sub falls with halo" true (s_hi < s_lo);
  Alcotest.(check bool) "btbt rises with halo" true (b_hi > b_lo);
  Alcotest.(check bool) "gate within 25%" true
    (abs_float (g_hi -. g_lo) /. g_lo < 0.25)

let test_tox_tradeoff () =
  (* Fig 4b: thinner oxide -> much more gate tunneling; thicker oxide ->
     worse SCE hence more subthreshold; BTBT roughly flat. *)
  let at tox =
    Model.off_state_leakage (Params.with_tox d25 tox) Params.Nmos ~w:1.0
      ~temp:300.0 ~vdd
  in
  let s_thin, g_thin, b_thin = at 0.9 in
  let s_thick, g_thick, b_thick = at 1.2 in
  Alcotest.(check bool) "gate explodes when thin" true (g_thin > 4.0 *. g_thick);
  Alcotest.(check bool) "sub grows with thicker oxide" true (s_thick > s_thin);
  Alcotest.(check bool) "btbt flat" true
    (abs_float (b_thick -. b_thin) /. b_thin < 0.05)

let test_length_rolloff () =
  let at length =
    let s, _, _ =
      Model.off_state_leakage (Params.with_length d25 length) Params.Nmos
        ~w:1.0 ~temp:300.0 ~vdd
    in
    s
  in
  Alcotest.(check bool) "shorter channel leaks more" true
    (at 0.022 > 1.5 *. at 0.025)

let test_btbt_exponential_in_bias () =
  let b v =
    (Model.components d25 Params.Nmos ~w:1.0 ~temp:300.0
       { Model.vg = 0.0; vd = v; vs = 0.0; vb = 0.0 }).Model.ibtbt_d
  in
  Alcotest.(check bool) "monotone" true (b 0.9 > b 0.6 && b 0.6 > b 0.3);
  Alcotest.(check bool) "super-linear growth" true (b 0.9 > 2.5 *. b 0.45)

let test_btbt_zero_at_zero_bias () =
  let c =
    Model.components d25 Params.Nmos ~w:1.0 ~temp:300.0
      { Model.vg = 0.0; vd = 0.0; vs = 0.0; vb = 0.0 }
  in
  check_float ~eps:1e-15 "no junction current at 0 bias" 0.0 c.Model.ibtbt_d

let test_forward_diode_clamps () =
  let c =
    Model.components d25 Params.Nmos ~w:1.0 ~temp:300.0
      { Model.vg = 0.0; vd = -0.25; vs = 0.0; vb = 0.0 }
  in
  Alcotest.(check bool) "forward junction conducts hard" true
    (c.Model.ibtbt_d < -1e-9)

let test_gate_current_sign_follows_field () =
  let c_pos =
    Model.components d25 Params.Nmos ~w:1.0 ~temp:300.0
      { Model.vg = vdd; vd = 0.0; vs = 0.0; vb = 0.0 }
  in
  Alcotest.(check bool) "gate high: current into gate" true
    ((Model.terminals_of_components c_pos).Model.into_gate > 0.0);
  let c_neg =
    Model.components d25 Params.Nmos ~w:1.0 ~temp:300.0
      { Model.vg = 0.0; vd = vdd; vs = vdd; vb = 0.0 }
  in
  Alcotest.(check bool) "gate low: current out of gate" true
    ((Model.terminals_of_components c_neg).Model.into_gate < 0.0)

let test_reverse_tunneling_weaker () =
  let forward =
    Model.gate_leakage
      (Model.components d25 Params.Nmos ~w:1.0 ~temp:300.0
         { Model.vg = vdd; vd = 0.0; vs = 0.0; vb = 0.0 })
  in
  let reverse =
    Model.gate_leakage
      (Model.components d25 Params.Nmos ~w:1.0 ~temp:300.0
         { Model.vg = 0.0; vd = vdd; vs = vdd; vb = 0.0 })
  in
  Alcotest.(check bool) "reverse < forward" true (reverse < forward)

let test_channel_current_antisymmetric () =
  let fwd =
    (Model.components d25 Params.Nmos ~w:1.0 ~temp:300.0
       { Model.vg = 0.45; vd = 0.6; vs = 0.2; vb = 0.0 }).Model.ids
  in
  let rev =
    (Model.components d25 Params.Nmos ~w:1.0 ~temp:300.0
       { Model.vg = 0.45; vd = 0.2; vs = 0.6; vb = 0.0 }).Model.ids
  in
  check_float ~eps:1e-18 "antisymmetric" 0.0 (fwd +. rev)

let test_width_scaling () =
  let at w =
    let s, g, b = Model.off_state_leakage d25 Params.Nmos ~w ~temp:300.0 ~vdd in
    s +. g +. b
  in
  check_float ~eps:1e-12 "leakage linear in width" (2.0 *. at 1.0) (at 2.0)

let test_width_rejects_nonpositive () =
  Alcotest.check_raises "w = 0"
    (Invalid_argument "Model.components: width must be positive") (fun () ->
      ignore
        (Model.components d25 Params.Nmos ~w:0.0 ~temp:300.0
           { Model.vg = 0.0; vd = 0.0; vs = 0.0; vb = 0.0 }))

let test_calibrated_magnitudes () =
  let nas = Physics.amps_to_nanoamps in
  let s, g, b = Model.off_state_leakage d25 Params.Nmos ~w:1.0 ~temp:300.0 ~vdd in
  Alcotest.(check bool) "sub in [150,600] nA" true (nas s > 150.0 && nas s < 600.0);
  Alcotest.(check bool) "off gate in [20,200] nA" true (nas g > 20.0 && nas g < 200.0);
  Alcotest.(check bool) "btbt in [20,100] nA" true (nas b > 20.0 && nas b < 100.0);
  let on_gate =
    Model.gate_leakage
      (Model.components d25 Params.Nmos ~w:1.0 ~temp:300.0
         { Model.vg = vdd; vd = 0.0; vs = 0.0; vb = 0.0 })
  in
  Alcotest.(check bool) "on-state gate tunneling ~ 0.5 uA/um" true
    (nas on_gate > 200.0 && nas on_gate < 1000.0)

let test_off_state_leakage_positive () =
  List.iter
    (fun pol ->
      let s, g, b = Model.off_state_leakage d25 pol ~w:1.0 ~temp:300.0 ~vdd in
      Alcotest.(check bool) "all components positive" true
        (s > 0.0 && g > 0.0 && b > 0.0))
    [ Params.Nmos; Params.Pmos ]

(* ------------------------------------------------------------ Variation *)

let test_variation_nominal_die_identity () =
  let d = Variation.apply_die d25 Variation.nominal_die in
  check_float "length" d25.Params.length d.Params.length;
  check_float "tox" d25.Params.tox d.Params.tox;
  check_float "vdd" d25.Params.vdd d.Params.vdd;
  check_float "vth" d25.Params.nmos.Params.vth0 d.Params.nmos.Params.vth0

let test_variation_sample_statistics () =
  let rng = Rng.create 99 in
  let s = Variation.paper_sigmas in
  let dies = Array.init 20_000 (fun _ -> Variation.sample_die rng s) in
  let dvths = Array.map (fun (d : Variation.die) -> d.Variation.dvth) dies in
  Alcotest.(check (float 0.002)) "dvth mean 0" 0.0 (Stats.mean dvths);
  Alcotest.(check (float 0.002)) "dvth sigma" s.Variation.sigma_vth_inter
    (Stats.std dvths)

let test_variation_with_vth_inter () =
  let s = Variation.with_vth_inter Variation.paper_sigmas 0.05 in
  check_float "retargeted" 0.05 s.Variation.sigma_vth_inter;
  check_float "others kept" Variation.paper_sigmas.Variation.sigma_l
    s.Variation.sigma_l

let test_variation_geometry_clamped () =
  let die = { Variation.dl = -1.0; dtox = -10.0; dvth = 0.0; dvdd = -5.0 } in
  let d = Variation.apply_die d25 die in
  Alcotest.(check bool) "length positive" true (d.Params.length > 0.0);
  Alcotest.(check bool) "tox positive" true (d.Params.tox > 0.0);
  Alcotest.(check bool) "vdd positive" true (d.Params.vdd > 0.0)

let test_variation_apply_gate () =
  let d = Variation.apply_gate d25 0.02 in
  check_float "vth shifted" (d25.Params.nmos.Params.vth0 +. 0.02)
    d.Params.nmos.Params.vth0

let test_variation_corners_ordering () =
  let s = Variation.paper_sigmas in
  let total c =
    let d = Variation.corner_device d25 s c in
    let sub, gate, btbt =
      Model.off_state_leakage d Params.Nmos ~w:1.0 ~temp:300.0 ~vdd:d.Params.vdd
    in
    sub +. gate +. btbt
  in
  let fast = total Variation.Fast
  and typical = total Variation.Typical
  and slow = total Variation.Slow in
  Alcotest.(check bool) "fast > typical > slow" true
    (fast > typical && typical > slow);
  Alcotest.(check bool) "fast/slow spread is large" true (fast > 5.0 *. slow)

let test_variation_typical_corner_is_nominal () =
  let s = Variation.paper_sigmas in
  let d = Variation.corner_device d25 s Variation.Typical in
  check_float "same vth" d25.Params.nmos.Params.vth0 d.Params.nmos.Params.vth0;
  check_float "same vdd" d25.Params.vdd d.Params.vdd

let test_variation_leakage_spread () =
  let rng = Rng.create 5 in
  let s = Variation.paper_sigmas in
  let subs =
    Array.init 2000 (fun _ ->
        let die = Variation.sample_die rng s in
        let d = Variation.apply_die d25 die in
        let sub, _, _ =
          Model.off_state_leakage d Params.Nmos ~w:1.0 ~temp:300.0 ~vdd
        in
        sub)
  in
  let summary = Stats.summarize subs in
  Alcotest.(check bool) "right-skewed spread" true
    (summary.Stats.max -. summary.Stats.p50
    > summary.Stats.p50 -. summary.Stats.min)

(* ---------------------------------------- die clamping regressions *)

(* The clamp floor is an exact contract: a pathological negative sample
   lands ON min_geometry_scale x nominal (not near it, not below it, and
   without raising through the Params setters' positivity guards). *)
let test_variation_clamp_exact_floor () =
  let die =
    {
      Variation.dl = -10.0 *. d25.Params.length;
      dtox = -10.0 *. d25.Params.tox;
      dvth = 0.0;
      dvdd = -10.0 *. d25.Params.vdd;
    }
  in
  let d = Variation.apply_die d25 die in
  let floor_of nominal = Variation.min_geometry_scale *. nominal in
  check_float "length on floor" (floor_of d25.Params.length) d.Params.length;
  check_float "tox on floor" (floor_of d25.Params.tox) d.Params.tox;
  check_float "vdd on floor" (floor_of d25.Params.vdd) d.Params.vdd

let test_variation_clamp_inactive_inside_floor () =
  let die =
    {
      Variation.dl = -0.4 *. d25.Params.length;
      dtox = 0.1 *. d25.Params.tox;
      dvth = 0.0;
      dvdd = 0.05;
    }
  in
  let d = Variation.apply_die d25 die in
  check_float "length passes through" (0.6 *. d25.Params.length)
    d.Params.length;
  check_float "tox passes through" (1.1 *. d25.Params.tox) d.Params.tox;
  check_float "vdd passes through" (d25.Params.vdd +. 0.05) d.Params.vdd

let test_variation_vth_never_clamped () =
  let die = { Variation.nominal_die with Variation.dvth = -0.35 } in
  let d = Variation.apply_die d25 die in
  check_float "nmos vth shifted verbatim"
    (d25.Params.nmos.Params.vth0 -. 0.35)
    d.Params.nmos.Params.vth0

let prop_apply_die_physical =
  qtest "apply_die keeps any die physical"
    QCheck2.Gen.(
      let shift = float_range (-2.0) 2.0 in
      quad shift shift shift shift)
    (fun (dl, dtox, dvth, dvdd) ->
      let d = Variation.apply_die d25 { Variation.dl; dtox; dvth; dvdd } in
      let floor_of nominal = Variation.min_geometry_scale *. nominal in
      let ok field nominal shift =
        field = Float.max (floor_of nominal) (nominal +. shift)
      in
      ok d.Params.length d25.Params.length dl
      && ok d.Params.tox d25.Params.tox dtox
      && ok d.Params.vdd d25.Params.vdd dvdd
      && d.Params.nmos.Params.vth0 = d25.Params.nmos.Params.vth0 +. dvth)

let test_corner_die_directions () =
  let s = Variation.paper_sigmas in
  let fast = Variation.corner_device d25 s Variation.Fast in
  let slow = Variation.corner_device d25 s Variation.Slow in
  Alcotest.(check bool) "fast: short, thin, low vth, high vdd" true
    (fast.Params.length < d25.Params.length
    && fast.Params.tox < d25.Params.tox
    && fast.Params.nmos.Params.vth0 < d25.Params.nmos.Params.vth0
    && fast.Params.vdd > d25.Params.vdd);
  Alcotest.(check bool) "slow: long, thick, high vth, low vdd" true
    (slow.Params.length > d25.Params.length
    && slow.Params.tox > d25.Params.tox
    && slow.Params.nmos.Params.vth0 > d25.Params.nmos.Params.vth0
    && slow.Params.vdd < d25.Params.vdd);
  Alcotest.(check bool) "corner devices are deterministic" true
    (Stdlib.compare fast (Variation.corner_device d25 s Variation.Fast) = 0
    && Stdlib.compare slow (Variation.corner_device d25 s Variation.Slow) = 0)

(* ---------------------------------------- jets vs finite differences *)

module Jet = Leakage_numeric.Jet
module Fd = Diff_harness.Fd

(* Worst-case (leakiest) off state per polarity, in absolute node volts. *)
let off_bias = function
  | Params.Nmos -> { Model.vg = 0.0; vd = vdd; vs = 0.0; vb = 0.0 }
  | Params.Pmos -> { Model.vg = vdd; vd = 0.0; vs = vdd; vb = vdd }

let const_bias (b : Model.bias) =
  {
    Model.jvg = Jet.const b.Model.vg;
    jvd = Jet.const b.Model.vd;
    jvs = Jet.const b.Model.vs;
    jvb = Jet.const b.Model.vb;
  }

(* The signed sources, not the abs-summed reporting scalars: |.| kinks
   where a component crosses zero, which would poison the finite
   differences without testing anything about the jets. *)
let scalars =
  [
    ("ids", (fun (j : Model.components_jet) -> j.Model.jids),
     fun (c : Model.components) -> c.Model.ids);
    ("igso", (fun j -> j.Model.jigso), fun c -> c.Model.igso);
    ("igdo", (fun j -> j.Model.jigdo), fun c -> c.Model.igdo);
    ("igcs", (fun j -> j.Model.jigcs), fun c -> c.Model.igcs);
    ("igcd", (fun j -> j.Model.jigcd), fun c -> c.Model.igcd);
    ("igb", (fun j -> j.Model.jigb), fun c -> c.Model.igb);
    ("ibtbt_d", (fun j -> j.Model.jibtbt_d), fun c -> c.Model.ibtbt_d);
    ("ibtbt_s", (fun j -> j.Model.jibtbt_s), fun c -> c.Model.ibtbt_s);
  ]

let both_polarities = [ (Params.Nmos, "nmos"); (Params.Pmos, "pmos") ]

let test_jet_constant_seeds_match_components () =
  List.iter
    (fun (pol, pname) ->
      let b = off_bias pol in
      let c = Model.components d25 pol ~w:1.3 ~temp:320.0 b in
      let j =
        Model.components_jet d25 pol ~w:1.3 ~temp:320.0
          ~length:(Jet.const d25.Params.length)
          ~tox:(Jet.const d25.Params.tox) ~dvth:(Jet.const 0.0) (const_bias b)
      in
      List.iter
        (fun (sname, pickj, pick) ->
          check_float ~eps:0.0
            (Printf.sprintf "%s %s value" pname sname)
            (pick c)
            (Jet.value (pickj j));
          check_float ~eps:0.0
            (Printf.sprintf "%s %s deriv" pname sname)
            0.0
            (Jet.deriv (pickj j)))
        scalars)
    both_polarities

(* One seeded axis: [jet] evaluates the model with that axis as the jet
   variable, [f] is the plain-model scalar as a function of the axis; the
   jet's first and second derivatives must match central differences. *)
let check_axis ~pname ~axis ~h ~x jet f =
  List.iter
    (fun (sname, pickj, pick) ->
      let j = pickj jet in
      let name = Printf.sprintf "%s %s d/d%s" pname sname axis in
      Fd.check_grad ~floor:1e-12 ~name ~h (fun v -> pick (f v)) x
        (Jet.deriv j);
      Fd.check_second ~tol:1e-3 ~floor:1e-8
        ~name:(name ^ " (2nd)")
        ~h
        (fun v -> pick (f v))
        x (Jet.second j))
    scalars

let test_jet_length_matches_fd () =
  List.iter
    (fun (pol, pname) ->
      let b = off_bias pol in
      let jet =
        Model.components_jet d25 pol ~w:1.0 ~temp:300.0
          ~length:(Jet.var d25.Params.length)
          ~tox:(Jet.const d25.Params.tox) ~dvth:(Jet.const 0.0) (const_bias b)
      in
      check_axis ~pname ~axis:"length" ~h:1e-5 ~x:d25.Params.length jet
        (fun l -> Model.components (Params.with_length d25 l) pol ~w:1.0 ~temp:300.0 b))
    both_polarities

let test_jet_tox_matches_fd () =
  List.iter
    (fun (pol, pname) ->
      let b = off_bias pol in
      let jet =
        Model.components_jet d25 pol ~w:1.0 ~temp:300.0
          ~length:(Jet.const d25.Params.length)
          ~tox:(Jet.var d25.Params.tox) ~dvth:(Jet.const 0.0) (const_bias b)
      in
      check_axis ~pname ~axis:"tox" ~h:1e-5 ~x:d25.Params.tox jet (fun t ->
          Model.components (Params.with_tox d25 t) pol ~w:1.0 ~temp:300.0 b))
    both_polarities

let test_jet_dvth_matches_fd () =
  List.iter
    (fun (pol, pname) ->
      let b = off_bias pol in
      let jet =
        Model.components_jet d25 pol ~w:1.0 ~temp:300.0
          ~length:(Jet.const d25.Params.length)
          ~tox:(Jet.const d25.Params.tox) ~dvth:(Jet.var 0.0) (const_bias b)
      in
      check_axis ~pname ~axis:"vth" ~h:1e-5 ~x:0.0 jet (fun dv ->
          Model.components (Params.with_vth_shift d25 dv) pol ~w:1.0
            ~temp:300.0 b))
    both_polarities

(* An interior bias point for the voltage axes: every junction strictly
   reverse-biased and the channel in weak inversion, so no source sits on
   the zero-bias BTBT kink or the forward-diode clamp and every component
   is smooth in all four terminal voltages. *)
let smooth_bias = function
  | Params.Nmos -> { Model.vg = 0.07; vd = 0.5; vs = 0.03; vb = -0.04 }
  | Params.Pmos ->
    {
      Model.vg = vdd -. 0.07;
      vd = vdd -. 0.5;
      vs = vdd -. 0.03;
      vb = vdd +. 0.04;
    }

let test_jet_bias_matches_fd () =
  List.iter
    (fun (pol, pname) ->
      let b = smooth_bias pol in
      List.iter
        (fun (axis, seed, subst) ->
          let jet =
            Model.components_jet d25 pol ~w:1.0 ~temp:300.0
              ~length:(Jet.const d25.Params.length)
              ~tox:(Jet.const d25.Params.tox) ~dvth:(Jet.const 0.0) (seed b)
          in
          let x =
            match axis with
            | "vg" -> b.Model.vg
            | "vd" -> b.Model.vd
            | "vs" -> b.Model.vs
            | _ -> b.Model.vb
          in
          check_axis ~pname ~axis ~h:1e-5 ~x jet (fun v ->
              Model.components d25 pol ~w:1.0 ~temp:300.0 (subst b v)))
        [
          ( "vg",
            (fun b -> { (const_bias b) with Model.jvg = Jet.var b.Model.vg }),
            fun b v -> { b with Model.vg = v } );
          ( "vd",
            (fun b -> { (const_bias b) with Model.jvd = Jet.var b.Model.vd }),
            fun b v -> { b with Model.vd = v } );
          ( "vs",
            (fun b -> { (const_bias b) with Model.jvs = Jet.var b.Model.vs }),
            fun b v -> { b with Model.vs = v } );
          ( "vb",
            (fun b -> { (const_bias b) with Model.jvb = Jet.var b.Model.vb }),
            fun b v -> { b with Model.vb = v } );
        ])
    both_polarities

let () =
  Alcotest.run "device"
    [
      ( "physics",
        [
          Alcotest.test_case "thermal voltage" `Quick test_thermal_voltage;
          Alcotest.test_case "vT linear" `Quick test_thermal_voltage_scales;
          Alcotest.test_case "bandgap" `Quick test_bandgap_narrows;
          Alcotest.test_case "celsius" `Quick test_celsius_roundtrip;
          Alcotest.test_case "nanoamps" `Quick test_nanoamps;
        ] );
      ( "params",
        [
          Alcotest.test_case "fet selector" `Quick test_fet_selector;
          Alcotest.test_case "variants" `Quick test_variants_exist;
          Alcotest.test_case "halo guard" `Quick test_with_halo_rejects_nonpositive;
          Alcotest.test_case "vth shift" `Quick test_with_vth_shift;
          Alcotest.test_case "variant totals" `Quick test_variant_totals_comparable;
          Alcotest.test_case "variant domination" `Quick test_variant_domination;
        ] );
      ( "model",
        [
          Alcotest.test_case "terminal KCL" `Quick test_terminal_conservation_nominal;
          prop_terminal_conservation;
          prop_pmos_mirrors_nmos;
          Alcotest.test_case "sub vs vgs" `Quick test_subthreshold_increases_with_vgs;
          Alcotest.test_case "DIBL" `Quick test_subthreshold_dibl;
          Alcotest.test_case "sub vs T" `Quick test_subthreshold_exponential_in_temp;
          Alcotest.test_case "gate vs T" `Quick test_gate_leakage_flat_in_temp;
          Alcotest.test_case "btbt vs T" `Quick test_btbt_mild_in_temp;
          Alcotest.test_case "crossover with T" `Quick test_component_crossover_with_temp;
          Alcotest.test_case "halo tradeoff" `Quick test_halo_tradeoff;
          Alcotest.test_case "tox tradeoff" `Quick test_tox_tradeoff;
          Alcotest.test_case "length roll-off" `Quick test_length_rolloff;
          Alcotest.test_case "btbt vs bias" `Quick test_btbt_exponential_in_bias;
          Alcotest.test_case "btbt zero bias" `Quick test_btbt_zero_at_zero_bias;
          Alcotest.test_case "forward diode" `Quick test_forward_diode_clamps;
          Alcotest.test_case "gate sign" `Quick test_gate_current_sign_follows_field;
          Alcotest.test_case "reverse tunneling" `Quick test_reverse_tunneling_weaker;
          Alcotest.test_case "channel antisymmetry" `Quick test_channel_current_antisymmetric;
          Alcotest.test_case "width scaling" `Quick test_width_scaling;
          Alcotest.test_case "width guard" `Quick test_width_rejects_nonpositive;
          Alcotest.test_case "calibration" `Quick test_calibrated_magnitudes;
          Alcotest.test_case "off-state positive" `Quick test_off_state_leakage_positive;
        ] );
      ( "variation",
        [
          Alcotest.test_case "nominal identity" `Quick test_variation_nominal_die_identity;
          Alcotest.test_case "sample stats" `Slow test_variation_sample_statistics;
          Alcotest.test_case "with vth inter" `Quick test_variation_with_vth_inter;
          Alcotest.test_case "geometry clamps" `Quick test_variation_geometry_clamped;
          Alcotest.test_case "apply gate" `Quick test_variation_apply_gate;
          Alcotest.test_case "corners ordering" `Quick test_variation_corners_ordering;
          Alcotest.test_case "typical corner" `Quick test_variation_typical_corner_is_nominal;
          Alcotest.test_case "leakage spread" `Quick test_variation_leakage_spread;
          Alcotest.test_case "clamp exact floor" `Quick test_variation_clamp_exact_floor;
          Alcotest.test_case "clamp inactive inside floor" `Quick
            test_variation_clamp_inactive_inside_floor;
          Alcotest.test_case "vth never clamped" `Quick test_variation_vth_never_clamped;
          prop_apply_die_physical;
          Alcotest.test_case "corner directions" `Quick test_corner_die_directions;
        ] );
      ( "jets",
        [
          Alcotest.test_case "constant seeds = components" `Quick
            test_jet_constant_seeds_match_components;
          Alcotest.test_case "d/dlength vs FD" `Quick test_jet_length_matches_fd;
          Alcotest.test_case "d/dtox vs FD" `Quick test_jet_tox_matches_fd;
          Alcotest.test_case "d/dvth vs FD" `Quick test_jet_dvth_matches_fd;
          Alcotest.test_case "d/dbias vs FD" `Quick test_jet_bias_matches_fd;
        ] );
    ]
