(* Tests of the Domain worker pool and the bit-identical parallel/sequential
   contract of the estimation hot paths.

   Pools are created once at module level and reused across cases (spawning
   domains per qcheck case would dominate runtime); worker-domain
   characterization caches warm up across cases exactly as they would in a
   long-lived process. *)

module Params = Leakage_device.Params
module Variation = Leakage_device.Variation
module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report
module Characterize = Leakage_core.Characterize
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Monte_carlo = Leakage_core.Monte_carlo
module Vector_mc = Leakage_incremental.Vector_mc
module Suite = Leakage_benchmarks.Suite
module Rng = Leakage_numeric.Rng
module Pool = Leakage_parallel.Pool

let device = Params.d25
let temp = 300.0
let coarse_grid = { Characterize.max_current = 3.0e-6; points = 5 }
let lib = Library.create ~grid:coarse_grid ~device ~temp ()

let pool1 = Pool.create ~jobs:1 ()
let pool2 = Pool.create ~jobs:2 ()
let pool3 = Pool.create ~jobs:3 ()
let pools = [ None; Some pool1; Some pool2; Some pool3 ]

let () =
  at_exit (fun () ->
      List.iter (function Some p -> Pool.shutdown p | None -> ()) pools)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------ pool unit *)

let test_map_matches_sequential () =
  let expected = Array.init 100 (fun i -> i * i) in
  List.iter
    (fun pool ->
      Alcotest.(check bool) "map slots in index order" true
        (Pool.map ?pool 100 (fun i -> i * i) = expected))
    pools

let test_run_executes_each_once () =
  let hits = Array.make 257 0 in
  let mutex = Mutex.create () in
  Pool.run ~pool:pool3 257 (fun i ->
      Mutex.lock mutex;
      hits.(i) <- hits.(i) + 1;
      Mutex.unlock mutex);
  Alcotest.(check bool) "every item exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_map_empty () =
  Alcotest.(check int) "n = 0" 0
    (Array.length (Pool.map ~pool:pool2 0 (fun i -> i)))

let test_map_chunked_boundaries () =
  (* boundaries are k * chunk regardless of the pool *)
  List.iter
    (fun pool ->
      let chunks = Pool.map_chunked ?pool ~chunk:4 10 (fun ~lo ~hi -> (lo, hi)) in
      Alcotest.(check bool) "3 chunks at fixed offsets" true
        (chunks = [| (0, 4); (4, 8); (8, 10) |]))
    pools

let test_map_chunked_rejects_bad_chunk () =
  Alcotest.check_raises "chunk 0"
    (Invalid_argument "Pool.map_chunked: chunk must be >= 1")
    (fun () -> ignore (Pool.map_chunked ~chunk:0 4 (fun ~lo:_ ~hi:_ -> ())))

let test_create_rejects_bad_jobs () =
  Alcotest.check_raises "jobs 0"
    (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0 ()))

let test_jobs_reported () =
  Alcotest.(check int) "pool3 lanes" 3 (Pool.jobs pool3);
  Alcotest.(check int) "pool1 lanes" 1 (Pool.jobs pool1)

let test_lowest_index_exception_wins () =
  (* items keep draining after a failure; the lowest index is re-raised *)
  List.iter
    (fun pool ->
      match
        Pool.run ?pool 16 (fun i ->
            if i = 3 || i = 11 then failwith (string_of_int i))
      with
      | () -> Alcotest.fail "expected an exception"
      | exception Failure m -> Alcotest.(check string) "lowest index" "3" m)
    pools

let test_nested_run_is_inline () =
  (* a region submitted while the pool is busy must run inline, not deadlock *)
  let total = Atomic.make 0 in
  Pool.run ~pool:pool2 4 (fun _ ->
      Pool.run ~pool:pool2 4 (fun _ -> Atomic.incr total));
  Alcotest.(check int) "all nested items ran" 16 (Atomic.get total)

let test_with_pool_returns () =
  Alcotest.(check int) "value through" 42
    (Pool.with_pool ~jobs:2 (fun pool ->
         Array.length (Pool.map ~pool 43 Fun.id) - 1))

let test_default_jobs_positive () =
  Alcotest.(check bool) "default jobs >= 1" true (Pool.default_jobs () >= 1)

let test_shutdown_idempotent_and_inline () =
  let p = Pool.create ~jobs:3 () in
  Pool.shutdown p;
  (* shutdown again: must be a no-op, not a raise or a hang *)
  Pool.shutdown p;
  (* a shut-down pool still runs regions — inline, raise-free *)
  let expected = Array.init 33 (fun i -> i * 7) in
  Alcotest.(check bool) "map on shut-down pool" true
    (Pool.map ~pool:p 33 (fun i -> i * 7) = expected);
  let hits = ref 0 in
  Pool.run ~pool:p 5 (fun _ -> incr hits);
  Alcotest.(check int) "run on shut-down pool" 5 !hits;
  (* exceptions still follow the lowest-index contract inline *)
  (match Pool.run ~pool:p 4 (fun i -> failwith (string_of_int i)) with
   | () -> Alcotest.fail "expected an exception"
   | exception Failure m -> Alcotest.(check string) "lowest index" "0" m);
  Pool.shutdown p

let test_parse_jobs () =
  let cases =
    [ ("8", Some 8); (" 16 ", Some 16); ("1", Some 1); ("128", Some 128);
      ("500", Some 500) (* clamping is default_jobs' business, not parsing *);
      ("0", None); ("-3", None); ("", None); ("  ", None);
      ("garbage", None); ("3.5", None); ("8x", None) ]
  in
  List.iter
    (fun (input, expected) ->
      Alcotest.(check (option int))
        (Printf.sprintf "parse_jobs %S" input)
        expected (Pool.parse_jobs input))
    cases

let test_clamp_jobs () =
  Alcotest.(check int) "0 -> 1" 1 (Pool.clamp_jobs 0);
  Alcotest.(check int) "-5 -> 1" 1 (Pool.clamp_jobs (-5));
  Alcotest.(check int) "8 unchanged" 8 (Pool.clamp_jobs 8);
  Alcotest.(check int) "128 unchanged" 128 (Pool.clamp_jobs 128);
  Alcotest.(check int) "500 -> 128" 128 (Pool.clamp_jobs 500)

let test_default_jobs_reads_env () =
  (* Unix.putenv mutates this process's real environment; always restore the
     previous value, also when a check fails. *)
  let saved = Sys.getenv_opt "LEAKCTL_JOBS" in
  let restore () =
    Unix.putenv "LEAKCTL_JOBS" (Option.value saved ~default:"")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "LEAKCTL_JOBS" "7";
      Alcotest.(check int) "LEAKCTL_JOBS=7" 7 (Pool.default_jobs ());
      Unix.putenv "LEAKCTL_JOBS" "500";
      Alcotest.(check int) "LEAKCTL_JOBS=500 clamps to 128" 128
        (Pool.default_jobs ());
      Unix.putenv "LEAKCTL_JOBS" "0";
      Alcotest.(check bool) "LEAKCTL_JOBS=0 falls back" true
        (Pool.default_jobs () >= 1);
      Unix.putenv "LEAKCTL_JOBS" "-2";
      Alcotest.(check bool) "LEAKCTL_JOBS=-2 falls back" true
        (Pool.default_jobs () >= 1);
      Unix.putenv "LEAKCTL_JOBS" "nonsense";
      Alcotest.(check bool) "garbage falls back" true
        (Pool.default_jobs () >= 1))

(* -------------------------------------------------- random test circuits *)

let random_netlist rng =
  let b = Netlist.Builder.create "rand" in
  let n_inputs = 2 + Rng.int rng 3 in
  let inputs = Array.init n_inputs (fun _ -> Netlist.Builder.input b) in
  let nets = ref (Array.to_list inputs) in
  let used = Hashtbl.create 32 in
  let pick () = List.nth !nets (Rng.int rng (List.length !nets)) in
  let add_gate kind =
    let ins = Array.init (Gate.arity kind) (fun _ -> pick ()) in
    Array.iter (fun n -> Hashtbl.replace used n ()) ins;
    let out = Netlist.Builder.gate b kind ins in
    nets := out :: !nets
  in
  let n_gates = 4 + Rng.int rng 12 in
  for _ = 1 to n_gates do
    add_gate
      (match Rng.int rng 6 with
       | 0 -> Gate.Inv
       | 1 -> Gate.Buf
       | 2 -> Gate.Nand 2
       | 3 -> Gate.Nor 2
       | 4 -> Gate.And 2
       | _ -> Gate.Or 2)
  done;
  (* consume untouched inputs and expose every sink as a primary output so
     validation sees a closed circuit *)
  Array.iter
    (fun n -> if not (Hashtbl.mem used n) then begin
        Hashtbl.replace used n ();
        let out = Netlist.Builder.gate b Gate.Inv [| n |] in
        nets := out :: !nets
      end)
    inputs;
  List.iter
    (fun n ->
      if not (Hashtbl.mem used n) && not (Array.mem n inputs) then
        Netlist.Builder.mark_output b n)
    !nets;
  Netlist.Builder.finish b

(* --------------------------------------------------- determinism: paths *)

let prop_average_over_vectors_bit_identical =
  qtest ~count:12 "average_over_vectors bit-identical at any pool size"
    QCheck2.Gen.(tup2 (int_bound 100_000) (int_bound 100_000))
    (fun (cseed, vseed) ->
      let rng = Rng.create (cseed + 1) in
      let nl = random_netlist rng in
      let width = Array.length (Netlist.inputs nl) in
      let vrng = Rng.create (vseed + 1) in
      (* 1..40 vectors: exercises partial, single and multi chunk counts *)
      let vs =
        List.init (1 + Rng.int vrng 40) (fun _ -> Logic.random_vector vrng width)
      in
      let seq = Estimator.average_over_vectors lib nl vs in
      List.for_all
        (fun pool -> Estimator.average_over_vectors ?pool lib nl vs = seq)
        pools)

let prop_monte_carlo_bit_identical =
  qtest ~count:4 "Monte_carlo.run bit-identical at any pool size"
    QCheck2.Gen.(tup2 (int_bound 100_000) (int_range 1 5))
    (fun (seed, n_samples) ->
      let config =
        { Monte_carlo.paper_config with
          Monte_carlo.n_samples; seed; n_load_in = 2; n_load_out = 1 }
      in
      let run pool =
        Monte_carlo.run ?pool ~config ~device ~temp
          ~sigmas:Variation.paper_sigmas ()
      in
      let seq = run None in
      List.for_all (fun pool -> run pool = seq) pools)

let prop_vector_mc_bit_identical =
  qtest ~count:6 "Vector_mc.resample bit-identical at any pool size"
    QCheck2.Gen.(tup2 (int_bound 100_000) (int_range 1 70))
    (fun (seed, samples) ->
      let rng = Rng.create (seed + 1) in
      let nl = random_netlist rng in
      let run pool = Vector_mc.resample ?pool ~seed:(seed + 2) ~samples lib nl in
      let seq = run None in
      List.for_all
        (fun pool ->
          let r = run pool in
          r.Vector_mc.totals = seq.Vector_mc.totals
          && r.Vector_mc.baselines = seq.Vector_mc.baselines
          && r.Vector_mc.summary = seq.Vector_mc.summary
          && r.Vector_mc.mean_components = seq.Vector_mc.mean_components
          && r.Vector_mc.mean_shift_percent = seq.Vector_mc.mean_shift_percent)
        pools)

let test_suite_estimate_all_deterministic () =
  let entries = [ Suite.find "alu88" ] in
  let seq = Suite.estimate_all ~entries ~vectors:4 lib in
  List.iter
    (fun pool ->
      let r = Suite.estimate_all ?pool ~entries ~vectors:4 lib in
      Alcotest.(check bool) "suite runs bit-identical" true (r = seq))
    pools;
  Alcotest.(check int) "one run per entry" 1 (Array.length seq);
  Alcotest.(check bool) "positive totals" true
    (Report.total seq.(0).Suite.loaded > 0.0)

let test_precharacterize_pool_adopts_entries () =
  let fresh = Library.create ~grid:coarse_grid ~device ~temp () in
  Library.precharacterize ~pool:pool2 ~kinds:[ Gate.Inv; Gate.Nand 2 ] fresh;
  (* 2 INV vectors + 4 NAND2 vectors land in the calling domain's cache *)
  Alcotest.(check int) "entries adopted" 6 (Library.entry_count fresh);
  (* adopted entries must be the same values a direct lookup returns *)
  let e = Library.entry fresh Gate.Inv [| Logic.Zero |] in
  Alcotest.(check bool) "usable entry" true
    (Report.total e.Characterize.nominal_isolated > 0.0)

let test_over_vectors_pool_matches () =
  let rng = Rng.create 11 in
  let nl = random_netlist rng in
  let width = Array.length (Netlist.inputs nl) in
  let vs = List.init 37 (fun _ -> Logic.random_vector rng width) in
  let seq = Vector_mc.over_vectors lib nl vs in
  List.iter
    (fun pool ->
      Alcotest.(check bool) "over_vectors bit-identical" true
        (Vector_mc.over_vectors ?pool lib nl vs = seq))
    pools

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "run covers all items" `Quick test_run_executes_each_once;
          Alcotest.test_case "map empty" `Quick test_map_empty;
          Alcotest.test_case "chunk boundaries fixed" `Quick test_map_chunked_boundaries;
          Alcotest.test_case "chunk rejects 0" `Quick test_map_chunked_rejects_bad_chunk;
          Alcotest.test_case "create rejects 0 jobs" `Quick test_create_rejects_bad_jobs;
          Alcotest.test_case "jobs reported" `Quick test_jobs_reported;
          Alcotest.test_case "lowest-index exception" `Quick test_lowest_index_exception_wins;
          Alcotest.test_case "nested run inline" `Quick test_nested_run_is_inline;
          Alcotest.test_case "with_pool" `Quick test_with_pool_returns;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
          Alcotest.test_case "shutdown idempotent, runs inline" `Quick
            test_shutdown_idempotent_and_inline;
          Alcotest.test_case "parse_jobs" `Quick test_parse_jobs;
          Alcotest.test_case "clamp_jobs" `Quick test_clamp_jobs;
          Alcotest.test_case "LEAKCTL_JOBS env" `Quick test_default_jobs_reads_env;
        ] );
      ( "determinism",
        [
          prop_average_over_vectors_bit_identical;
          prop_monte_carlo_bit_identical;
          prop_vector_mc_bit_identical;
          Alcotest.test_case "suite fan-out" `Quick test_suite_estimate_all_deterministic;
          Alcotest.test_case "precharacterize pool" `Quick test_precharacterize_pool_adopts_entries;
          Alcotest.test_case "over_vectors pool" `Quick test_over_vectors_pool_matches;
        ] );
    ]
