(* Differential tests of the domain-parallel incremental session, built on
   the replay harness in diff_harness.ml:

   - random edit batches replayed through sequential apply_batch, parallel
     apply_batch at jobs ∈ {1,2,4,8} and the from-scratch estimator oracle;
   - the cone partitioner's contract (disjointness across groups, group
     count = overlap-graph component count, deterministic ordering);
   - undo/checkpoint/rollback interleaved with parallel batches (a pooled
     session tracks a sequential one bit-for-bit through arbitrary op
     sequences, and a fully rolled-back session refreshes to the exact
     state of a fresh one). *)

module H = Diff_harness
module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Netlist = Leakage_circuit.Netlist
module Incremental = Leakage_incremental.Incremental
module Edit = Leakage_incremental.Edit
module Cone = Leakage_incremental.Cone
module Rng = Leakage_numeric.Rng

(* The observability contract says telemetry never perturbs a result, so the
   whole differential suite runs with metrics *and* span tracing on: every
   sequential = parallel = oracle assertion below doubles as a bit-identity
   check of instrumented against oracle code paths. *)
let () =
  Leakage_telemetry.Telemetry.set_enabled true;
  Leakage_telemetry.Trace.start ()

let qtest ?(count = 20) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let seed_pair = QCheck2.Gen.(tup2 (int_bound 100_000) (int_bound 100_000))

(* --------------------------------------------------------------- replay *)

let prop_replay =
  qtest ~count:8 "random batches: sequential = parallel = oracle" seed_pair
    (fun (cseed, eseed) ->
      let rng = Rng.create (cseed + 1) in
      let nl = H.random_netlist rng in
      let pattern = H.random_pattern rng nl in
      let erng = Rng.create (eseed + 1) in
      let batches =
        List.init
          (1 + Rng.int erng 3)
          (fun _ -> H.random_batch erng nl (1 + Rng.int erng 9))
      in
      H.check ~name:"replay" nl pattern batches)

(* a deterministic replay so the harness also runs under `dune runtest`
   without qcheck's seed in play *)
let test_replay_fixed () =
  let rng = Rng.create 42 in
  let nl = H.random_netlist rng in
  let pattern = H.random_pattern rng nl in
  let batches =
    [ H.random_batch rng nl 6; H.random_batch rng nl 1; H.random_batch rng nl 12 ]
  in
  Alcotest.(check bool) "fixed replay" true
    (H.check ~name:"fixed" nl pattern batches)

(* ---------------------------------------------------------- partitioner *)

let ids_disjoint a b = List.for_all (fun x -> not (List.mem x b)) a

let cones_overlap (a : Cone.Partition.cone) (b : Cone.Partition.cone) =
  (not (ids_disjoint a.Cone.Partition.gates b.Cone.Partition.gates))
  || not (ids_disjoint a.Cone.Partition.nets b.Cone.Partition.nets)

(* reference component count: DFS over the pairwise cone-overlap graph *)
let overlap_components cones =
  let n = Array.length cones in
  let seen = Array.make n false in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      for j = 0 to n - 1 do
        if (not seen.(j)) && cones_overlap cones.(i) cones.(j) then dfs j
      done
    end
  in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if not seen.(i) then begin
      incr count;
      dfs i
    end
  done;
  !count

let strictly_increasing l = List.for_all2 ( < ) l (List.tl l @ [ max_int ])

let prop_partition =
  qtest ~count:50 "groups: disjoint cones, component count, ordering"
    seed_pair
    (fun (cseed, eseed) ->
      let rng = Rng.create (cseed + 1) in
      let nl = H.random_netlist rng in
      let erng = Rng.create (eseed + 1) in
      let n = 1 + Rng.int erng 11 in
      let edits = Array.init n (fun _ -> H.random_edit erng nl) in
      let cones = Array.map (Cone.Partition.cone nl) edits in
      let groups = Cone.Partition.groups nl edits in
      (* a partition of the batch indices *)
      let flat = List.concat_map Array.to_list (Array.to_list groups) in
      List.sort_uniq compare flat = List.init n Fun.id
      (* any two edits in different groups have disjoint gate AND net sets *)
      && (let ok = ref true in
          Array.iteri
            (fun gi ga ->
              Array.iteri
                (fun gj gb ->
                  if gi < gj then
                    Array.iter
                      (fun ei ->
                        Array.iter
                          (fun ej ->
                            if cones_overlap cones.(ei) cones.(ej) then
                              ok := false)
                          gb)
                      ga)
                groups)
            groups;
          !ok)
      (* group count equals the overlap graph's component count *)
      && Array.length groups = overlap_components cones
      (* deterministic ordering: members in batch order, groups by root *)
      && Array.for_all
           (fun g -> strictly_increasing (Array.to_list g))
           groups
      && strictly_increasing
           (List.map (fun g -> g.(0)) (Array.to_list groups)))

(* value-aware pruning: pruned cones are sound subsets of structural ones
   and the pruned partition refines the structural partition *)
let session_state nl pattern =
  {
    Cone.Partition.values = Leakage_circuit.Simulate.run nl pattern;
    kinds =
      Array.map (fun (g : Netlist.gate) -> g.Netlist.kind) (Netlist.gates nl);
  }

let subset a b = List.for_all (fun x -> List.mem x b) a

let prop_partition_pruned =
  qtest ~count:50 "pruned groups: subset cones, refinement, contract"
    seed_pair
    (fun (cseed, eseed) ->
      let rng = Rng.create (cseed + 1) in
      let nl = H.random_netlist rng in
      let pattern = H.random_pattern rng nl in
      let state = session_state nl pattern in
      let erng = Rng.create (eseed + 1) in
      let n = 1 + Rng.int erng 11 in
      let edits = Array.init n (fun _ -> H.random_edit erng nl) in
      let structural = Array.map (Cone.Partition.cone nl) edits in
      let pruned = Cone.Partition.cones ~state nl edits in
      let groups = Cone.Partition.groups ~state nl edits in
      (* each pruned cone is contained in its structural cone *)
      Array.for_all2
        (fun (p : Cone.Partition.cone) (s : Cone.Partition.cone) ->
          subset p.Cone.Partition.gates s.Cone.Partition.gates
          && subset p.Cone.Partition.nets s.Cone.Partition.nets)
        pruned structural
      (* still a partition of the batch indices *)
      && (let flat = List.concat_map Array.to_list (Array.to_list groups) in
          List.sort_uniq compare flat = List.init n Fun.id)
      (* groups match the pruned-cone overlap graph *)
      && Array.length groups = overlap_components pruned
      (* edits in different groups have disjoint pruned cones *)
      && (let ok = ref true in
          Array.iteri
            (fun gi ga ->
              Array.iteri
                (fun gj gb ->
                  if gi < gj then
                    Array.iter
                      (fun ei ->
                        Array.iter
                          (fun ej ->
                            if cones_overlap pruned.(ei) pruned.(ej) then
                              ok := false)
                          gb)
                      ga)
                groups)
            groups;
          !ok)
      (* same deterministic ordering contract as the structural partition *)
      && Array.for_all
           (fun g -> strictly_increasing (Array.to_list g))
           groups
      && strictly_increasing
           (List.map (fun g -> g.(0)) (Array.to_list groups))
      (* pruned cones only shrink, so the pruned partition refines the
         structural one: every pruned group sits inside one structural
         group *)
      && (let sgroups = Cone.Partition.groups nl edits in
          let sroot = Array.make n (-1) in
          Array.iter
            (fun g -> Array.iter (fun e -> sroot.(e) <- g.(0)) g)
            sgroups;
          Array.for_all
            (fun g -> Array.for_all (fun e -> sroot.(e) = sroot.(g.(0))) g)
            groups))

(* the canonical pruning scenario: a tapped chain under an all-zero pattern
   is cut at every gateway, so edits in distinct segments form distinct
   groups where the structural partition collapses them into one *)
let test_partition_pruned_chain () =
  let stages = 48 and tap_every = 8 in
  let nl = Leakage_benchmarks.Trees.chain ~stages ~tap_every () in
  let width = Array.length (Netlist.inputs nl) in
  let pattern = Array.make width Logic.Zero in
  let state = session_state nl pattern in
  (* one INV->BUF retype mid-segment in segments 0, 2, 4 *)
  let edits =
    Array.map
      (fun seg -> Edit.Retype ((seg * tap_every) + (tap_every / 2), Gate.Buf))
      [| 0; 2; 4 |]
  in
  let sgroups = Cone.Partition.groups nl edits in
  let pgroups = Cone.Partition.groups ~state nl edits in
  Alcotest.(check int) "structural: one downstream-entangled group" 1
    (Array.length sgroups);
  Alcotest.(check int) "pruned: one group per segment" 3
    (Array.length pgroups);
  (* pruned cones stop at the next gateway: a segment's worth of gates,
     not the rest of the chain *)
  let c = Cone.Partition.cone ~state nl edits.(0) in
  let reach = List.length c.Cone.Partition.gates in
  Alcotest.(check bool)
    (Printf.sprintf "pruned cone reach %d stays within a segment" reach)
    true
    (reach < 2 * tap_every);
  let s = Cone.Partition.cone nl edits.(0) in
  Alcotest.(check bool) "structural cone runs to the chain end" true
    (List.length s.Cone.Partition.gates > stages - tap_every)

let test_partition_singletons () =
  (* a one-edit batch is one group; an empty batch has no groups *)
  let rng = Rng.create 7 in
  let nl = H.random_netlist rng in
  let e = H.random_edit rng nl in
  Alcotest.(check int) "one group" 1
    (Array.length (Cone.Partition.groups nl [| e |]));
  Alcotest.(check int) "no groups" 0
    (Array.length (Cone.Partition.groups nl [||]))

(* ------------------------------------------- undo/checkpoint interleave *)

type op = Batch of Edit.t list | Undo | Checkpoint | Rollback

let random_ops rng nl n =
  List.init n (fun _ ->
      match Rng.int rng 8 with
      | 0 | 1 | 2 | 3 -> Batch (H.random_batch rng nl (1 + Rng.int rng 4))
      | 4 | 5 -> Undo
      | 6 -> Checkpoint
      | _ -> Rollback)

let prop_ops_interleave =
  qtest ~count:10 "pooled session tracks sequential through op sequences"
    seed_pair
    (fun (cseed, oseed) ->
      let rng = Rng.create (cseed + 1) in
      let nl = H.random_netlist rng in
      let pattern = H.random_pattern rng nl in
      let orng = Rng.create (oseed + 1) in
      let pool = List.nth (Lazy.force H.pools) (Rng.int orng 4) in
      let seq = Incremental.create H.lib nl pattern in
      let par = Incremental.create H.lib nl pattern in
      (* live checkpoints with the depth they were taken at; rolling back
         below a checkpoint invalidates it on both sessions alike *)
      let cps = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
           | Batch edits ->
             Incremental.apply_batch seq edits;
             Incremental.apply_batch ~pool par edits
           | Undo ->
             if Incremental.undo_depth seq > 0 then begin
               Incremental.undo seq;
               Incremental.undo par;
               let d = Incremental.undo_depth seq in
               cps := List.filter (fun (_, _, cd) -> cd <= d) !cps
             end
           | Checkpoint ->
             cps :=
               (Incremental.checkpoint seq, Incremental.checkpoint par,
                Incremental.undo_depth seq)
               :: !cps
           | Rollback ->
             (match !cps with
              | (cs, cp, d) :: rest ->
                Incremental.rollback seq cs;
                Incremental.rollback par cp;
                ignore d;
                cps := rest
              | [] -> ()));
          match H.fingerprint_diff (H.fingerprint seq) (H.fingerprint par) with
          | None -> ()
          | Some what ->
            ok := false;
            QCheck2.Test.fail_reportf "diverged in %s after %s" what
              (match op with
               | Batch es -> H.pp_batches [ es ]
               | Undo -> "undo"
               | Checkpoint -> "checkpoint"
               | Rollback -> "rollback"))
        (random_ops orng nl 14);
      (* roll everything back: refreshed state must equal a fresh session *)
      while Incremental.undo_depth seq > 0 do
        Incremental.undo seq;
        Incremental.undo par
      done;
      Incremental.refresh seq;
      Incremental.refresh par;
      let fresh = Incremental.create H.lib nl pattern in
      (match H.fingerprint_diff (H.fingerprint fresh) (H.fingerprint seq) with
       | None -> ()
       | Some what ->
         ok := false;
         QCheck2.Test.fail_reportf
           "rolled-back sequential session differs from fresh in %s" what);
      (match H.fingerprint_diff (H.fingerprint fresh) (H.fingerprint par) with
       | None -> ()
       | Some what ->
         ok := false;
         QCheck2.Test.fail_reportf
           "rolled-back pooled session differs from fresh in %s" what);
      !ok)

let test_rollback_after_parallel_batch () =
  (* the ISSUE's core scenario: checkpoint, one big pooled batch, rollback,
     refresh — byte-identical to never having applied the batch *)
  let rng = Rng.create 23 in
  let nl = H.random_netlist rng in
  let pattern = H.random_pattern rng nl in
  let pool = List.nth (Lazy.force H.pools) 2 (* jobs = 4 *) in
  let s = Incremental.create H.lib nl pattern in
  Incremental.refresh s;
  let before = H.fingerprint s in
  let cp = Incremental.checkpoint s in
  Incremental.apply_batch ~pool s (H.random_batch rng nl 16);
  Incremental.rollback s cp;
  Incremental.refresh s;
  match H.fingerprint_diff before (H.fingerprint s) with
  | None -> ()
  | Some what -> Alcotest.failf "state not restored: %s" what

let () =
  Alcotest.run "diff"
    [
      ( "replay",
        [ prop_replay; Alcotest.test_case "fixed batches" `Quick test_replay_fixed ] );
      ( "partition",
        [
          prop_partition;
          prop_partition_pruned;
          Alcotest.test_case "pruned chain segments" `Quick
            test_partition_pruned_chain;
          Alcotest.test_case "singletons" `Quick test_partition_singletons;
        ] );
      ( "interleave",
        [
          prop_ops_interleave;
          Alcotest.test_case "rollback after pooled batch" `Quick
            test_rollback_after_parallel_batch;
        ] );
    ]
