(* Ingestion hardening tests: streaming .bench parsing (CRLF, missing final
   newline, duplicate declarations, truncation), the SPICE-subset reader,
   LKN1 snapshot round trips and their fail-closed loading, and the
   struct-of-arrays accessor contract against the record view. *)

module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Netlist = Leakage_circuit.Netlist
module Bench_format = Leakage_circuit.Bench_format
module Spice_format = Leakage_circuit.Spice_format
module Snapshot = Leakage_circuit.Snapshot
module Simulate = Leakage_circuit.Simulate
module Characterize = Leakage_core.Characterize
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Report = Leakage_spice.Leakage_report

let with_temp_file ?(suffix = ".bench") content f =
  let path = Filename.temp_file "leakage_ingest" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc content);
      f path)

let check_parse_error expect_line expect_sub thunk =
  match thunk () with
  | (_ : Netlist.t) -> Alcotest.failf "expected Parse_error %S" expect_sub
  | exception Bench_format.Parse_error (line, msg) ->
    Alcotest.(check int) "error line" expect_line line;
    let found =
      let n = String.length expect_sub and l = String.length msg in
      let rec scan i = i + n <= l && (String.sub msg i n = expect_sub || scan (i + 1)) in
      scan 0
    in
    if not found then Alcotest.failf "message %S does not mention %S" msg expect_sub

let contains hay needle =
  let n = String.length needle and l = String.length hay in
  let rec scan i = i + n <= l && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let simple_bench =
  "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nw = NAND(a, b)\ny = NOT(w)\n"

(* ------------------------------------------------- streaming .bench parse *)

let test_bench_crlf_equals_lf () =
  let lf = Bench_format.parse_string ~name:"c" simple_bench in
  let crlf_text =
    String.concat "\r\n" (String.split_on_char '\n' simple_bench)
  in
  let crlf = Bench_format.parse_string ~name:"c" crlf_text in
  Alcotest.(check string) "same digest" (Netlist.digest lf) (Netlist.digest crlf);
  Alcotest.(check int) "gates" 2 (Netlist.gate_count crlf)

let test_bench_file_crlf_no_final_newline () =
  (* CRLF endings and a final line with no newline at all: the regression
     fixture for the explicit trailing-\r strip in the line reader. *)
  let text = "INPUT(a)\r\nOUTPUT(y)\r\ny = NOT(a)" in
  with_temp_file text (fun path ->
      let t = Bench_format.parse_file path in
      Alcotest.(check int) "one gate" 1 (Netlist.gate_count t);
      Alcotest.(check string) "clean PI name, no \\r" "a"
        (Netlist.net_name t (Netlist.inputs t).(0));
      Alcotest.(check string) "same circuit as LF text"
        (Netlist.digest (Bench_format.parse_string ~name:"c"
                           "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"))
        (Netlist.digest t))

let test_bench_parse_lines_streaming () =
  (* drive the core streaming entry point one line at a time *)
  let lines = ref (String.split_on_char '\n' simple_bench) in
  let next () =
    match !lines with
    | [] -> None
    | l :: rest -> lines := rest; Some l
  in
  let t = Bench_format.parse_lines ~name:"streamed" next in
  Alcotest.(check string) "same digest"
    (Netlist.digest (Bench_format.parse_string ~name:"c" simple_bench))
    (Netlist.digest t)

(* --------------------------------------------------- .bench error paths *)

let test_bench_empty_file () =
  check_parse_error 0 "empty .bench" (fun () ->
      Bench_format.parse_string ~name:"e" "# only a comment\n\n");
  with_temp_file "" (fun path ->
      check_parse_error 0 "empty .bench" (fun () ->
          Bench_format.parse_file path))

let test_bench_truncated_mid_gate () =
  (* a file cut off in the middle of a gate line: no closing paren *)
  let text = "INPUT(a)\nINPUT(b)\ny = NAND(a," in
  with_temp_file text (fun path ->
      check_parse_error 3 "missing ')'" (fun () ->
          Bench_format.parse_file path))

let test_bench_duplicate_output () =
  let text = "INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)\n" in
  check_parse_error 3 "duplicate OUTPUT declaration of y" (fun () ->
      Bench_format.parse_string ~name:"d" text)

let test_bench_duplicate_input () =
  let text = "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n" in
  check_parse_error 2 "duplicate INPUT declaration of a" (fun () ->
      Bench_format.parse_string ~name:"d" text)

let test_bench_unreadable_path () =
  match Bench_format.parse_file "/nonexistent/dir/missing.bench" with
  | (_ : Netlist.t) -> Alcotest.fail "expected Sys_error"
  | exception Sys_error _ -> ()

(* ------------------------------------------------------------ SPICE read *)

let spice_deck =
  String.concat "\n"
    [ "* extracted cell-level deck";
      ".subckt NAND2 a b y vdd vss";
      "M1 y a vdd vdd pmos w=2u";
      ".ends";
      "X1 a b w vdd vss NAND2 $ trailing comment";
      "X2 w";
      "+ y vdd";
      "+ vss INV m=2";
      ".end";
      "" ]

let test_spice_parse_basic () =
  let t = Spice_format.parse_string ~name:"deck" spice_deck in
  Alcotest.(check int) "two instances" 2 (Netlist.gate_count t);
  Alcotest.(check int) "PIs: a, b" 2 (Array.length (Netlist.inputs t));
  Alcotest.(check int) "POs: y" 1 (Array.length (Netlist.outputs t));
  Alcotest.(check string) "PO name" "y"
    (Netlist.net_name t (Netlist.outputs t).(0));
  (* X2's m=2 became drive strength; pin order in1..inN out held *)
  Alcotest.(check bool) "X1 is NAND2" true
    (Netlist.gate_kind t 0 = Gate.Nand 2);
  Alcotest.(check bool) "X2 is INV" true (Netlist.gate_kind t 1 = Gate.Inv);
  Alcotest.(check (float 0.0)) "multiplier -> strength" 2.0
    (Netlist.gate_strength t 1)

let test_spice_crlf_and_semicolon_comment () =
  let text = "X1 a y vdd 0 INV ; note\r\n" in
  let t = Spice_format.parse_string ~name:"d" text in
  Alcotest.(check int) "one gate" 1 (Netlist.gate_count t);
  Alcotest.(check string) "output net" "y"
    (Netlist.net_name t (Netlist.gate_out t 0))

let spice_error expect_line expect_sub text =
  match Spice_format.parse_string ~name:"d" text with
  | (_ : Netlist.t) -> Alcotest.failf "expected Parse_error %S" expect_sub
  | exception Spice_format.Parse_error (line, msg) ->
    Alcotest.(check int) "error line" expect_line line;
    if not (contains msg expect_sub) then
      Alcotest.failf "message %S does not mention %S" msg expect_sub

let test_spice_errors () =
  spice_error 0 "empty SPICE netlist" "* nothing here\n.end\n";
  spice_error 1 "unknown cell" "X1 a y FROB\n";
  spice_error 1 "unsupported element" "M1 d g s b nmos w=1u\n";
  spice_error 2 "driven twice" "X1 a y INV\nX2 b y INV\n";
  spice_error 1 "expects 2 logic pins + output" "X1 a y NAND2\n";
  spice_error 1 "bad device multiplier" "X1 a y INV m=-3\n";
  (* combinational cycle: blamed on an instance in the loop *)
  spice_error 1 "combinational cycle" "X1 b a INV\nX2 a b INV\n"

let test_spice_unreadable_path () =
  match Spice_format.parse_file "/nonexistent/dir/missing.sp" with
  | (_ : Netlist.t) -> Alcotest.fail "expected Sys_error"
  | exception Sys_error _ -> ()

(* -------------------------------------------------------- LKN1 snapshots *)

let with_snapshot t f =
  let path = Filename.temp_file "leakage_snap" ".lkn" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Snapshot.save path t;
      f path)

let coarse_grid = { Characterize.max_current = 3.0e-6; points = 5 }
let lib = lazy (Library.create ~grid:coarse_grid ~device:Leakage_device.Params.d25 ~temp:300.0 ())

let test_snapshot_roundtrip () =
  let t = Bench_format.parse_string ~name:"rt" simple_bench in
  with_snapshot t (fun path ->
      Alcotest.(check string) "header digest" (Netlist.digest t)
        (Snapshot.digest_of_file path);
      let u = Snapshot.load path in
      Alcotest.(check string) "digest" (Netlist.digest t) (Netlist.digest u);
      Alcotest.(check string) "name" (Netlist.name t) (Netlist.name u);
      Alcotest.(check int) "gates" (Netlist.gate_count t) (Netlist.gate_count u);
      Alcotest.(check int) "nets" (Netlist.net_count t) (Netlist.net_count u);
      for net = 0 to Netlist.net_count t - 1 do
        Alcotest.(check string) "net name" (Netlist.net_name t net)
          (Netlist.net_name u net)
      done;
      (* estimates through the mapped arrays are bit-identical *)
      let lib = Lazy.force lib in
      let pattern = Logic.vector_of_string "01" in
      let (tot_t, base_t) = Estimator.estimate_totals lib t pattern in
      let (tot_u, base_u) = Estimator.estimate_totals lib u pattern in
      Alcotest.(check bool) "bit-identical totals" true (tot_t = tot_u);
      Alcotest.(check bool) "bit-identical baseline" true (base_t = base_u))

let test_snapshot_roundtrip_unverified () =
  let t = Bench_format.parse_string ~name:"rt" simple_bench in
  with_snapshot t (fun path ->
      let u = Snapshot.load ~verify:false path in
      Alcotest.(check string) "digest" (Netlist.digest t) (Netlist.digest u))

let snapshot_error expect_sub thunk =
  match thunk () with
  | (_ : Netlist.t) -> Alcotest.failf "expected Snapshot_error %S" expect_sub
  | exception Snapshot.Snapshot_error msg ->
    if not (contains msg expect_sub) then
      Alcotest.failf "message %S does not mention %S" msg expect_sub

let test_snapshot_rejects_garbage () =
  with_temp_file ~suffix:".lkn" "not a snapshot" (fun path ->
      snapshot_error "too small" (fun () -> Snapshot.load path));
  with_temp_file ~suffix:".lkn" (String.make 8192 '\000') (fun path ->
      snapshot_error "bad magic" (fun () -> Snapshot.load path))

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let test_snapshot_rejects_truncation () =
  (* intact header, file cut short: the size equation fails closed before
     any mapping is dereferenced — an error, never a SIGBUS *)
  let t = Bench_format.parse_string ~name:"tr" simple_bench in
  with_snapshot t (fun path ->
      let data = read_all path in
      write_all path (String.sub data 0 (String.length data - 4096));
      snapshot_error "truncated" (fun () -> Snapshot.load path);
      (* the size check is part of the always-on fail-closed set *)
      snapshot_error "truncated" (fun () -> Snapshot.load ~verify:false path))

let test_snapshot_rejects_header_corruption () =
  let t = Bench_format.parse_string ~name:"hc" simple_bench in
  with_snapshot t (fun path ->
      let data = Bytes.of_string (read_all path) in
      (* flip a count byte: the header checksum no longer matches *)
      Bytes.set data 9 (Char.chr (Char.code (Bytes.get data 9) lxor 0xff));
      write_all path (Bytes.to_string data);
      snapshot_error "checksum mismatch" (fun () -> Snapshot.load path))

let test_snapshot_detects_payload_corruption () =
  let t = Bench_format.parse_string ~name:"pc" simple_bench in
  with_snapshot t (fun path ->
      let data = Bytes.of_string (read_all path) in
      (* perturb the low mantissa byte of gate 0's strength (the strength
         section starts at page 3): the file stays structurally valid, but
         the recomputed digest disagrees with the header *)
      Bytes.set data (3 * 4096) '\x01';
      write_all path (Bytes.to_string data);
      snapshot_error "digest mismatch" (fun () -> Snapshot.load path))

let test_snapshot_unreadable_path () =
  snapshot_error "cannot open" (fun () ->
      Snapshot.load "/nonexistent/dir/missing.lkn")

(* -------------------------------------------- SoA accessors vs record view *)

let test_soa_accessors_match_record_view () =
  let t = Bench_format.parse_string ~name:"soa" simple_bench in
  let gates = Netlist.gates t in
  Alcotest.(check int) "gate count" (Array.length gates) (Netlist.gate_count t);
  Array.iter
    (fun (g : Netlist.gate) ->
      Alcotest.(check bool) "kind" true (Netlist.gate_kind t g.Netlist.id = g.Netlist.kind);
      Alcotest.(check (float 0.0)) "strength" g.Netlist.strength
        (Netlist.gate_strength t g.Netlist.id);
      Alcotest.(check int) "out" g.Netlist.out (Netlist.gate_out t g.Netlist.id);
      Alcotest.(check int) "arity" (Array.length g.Netlist.fan_in)
        (Netlist.gate_arity t g.Netlist.id);
      Array.iteri
        (fun p net ->
          Alcotest.(check int) "pin" net (Netlist.gate_pin t g.Netlist.id p))
        g.Netlist.fan_in;
      Alcotest.(check bool) "fan_in array" true
        (Netlist.gate_fan_in t g.Netlist.id = g.Netlist.fan_in))
    gates;
  for net = 0 to Netlist.net_count t - 1 do
    let d = Netlist.driver t net in
    let d_id = Netlist.driver_id t net in
    (match d with
     | None -> Alcotest.(check int) "no driver" (-1) d_id
     | Some g -> Alcotest.(check int) "driver id" g.Netlist.id d_id);
    let from_view = List.map (fun g -> g.Netlist.id) (Netlist.fanout t net) in
    let from_iter = ref [] in
    Netlist.iter_fanout t net (fun g -> from_iter := g :: !from_iter);
    Alcotest.(check (list int)) "fanout order" from_view (List.rev !from_iter);
    let rev = ref [] in
    Netlist.rev_iter_fanout t net (fun g -> rev := g :: !rev);
    Alcotest.(check (list int)) "rev fanout" (List.rev from_view) !rev;
    Alcotest.(check int) "degree" (List.length from_view)
      (Netlist.fanout_degree t net)
  done

let test_spice_simulates_like_bench () =
  (* the same 2-gate circuit through both front ends computes identically *)
  let b = Bench_format.parse_string ~name:"c" simple_bench in
  let s =
    Spice_format.parse_string ~name:"c"
      "X1 a b w vdd NAND2\nX2 w y 0 INV\n"
  in
  Alcotest.(check string) "same structure" (Netlist.digest b) (Netlist.digest s);
  let run t v =
    let values = Simulate.run t (Logic.vector_of_string v) in
    Logic.to_char values.((Netlist.outputs t).(0))
  in
  List.iter
    (fun v -> Alcotest.(check char) v (run b v) (run s v))
    [ "00"; "01"; "10"; "11" ]

let () =
  Alcotest.run "ingest"
    [
      ( "bench-streaming",
        [
          Alcotest.test_case "crlf equals lf" `Quick test_bench_crlf_equals_lf;
          Alcotest.test_case "crlf + no final newline" `Quick
            test_bench_file_crlf_no_final_newline;
          Alcotest.test_case "parse_lines" `Quick test_bench_parse_lines_streaming;
        ] );
      ( "bench-errors",
        [
          Alcotest.test_case "empty file" `Quick test_bench_empty_file;
          Alcotest.test_case "truncated mid-gate" `Quick
            test_bench_truncated_mid_gate;
          Alcotest.test_case "duplicate OUTPUT" `Quick test_bench_duplicate_output;
          Alcotest.test_case "duplicate INPUT" `Quick test_bench_duplicate_input;
          Alcotest.test_case "unreadable path" `Quick test_bench_unreadable_path;
        ] );
      ( "spice",
        [
          Alcotest.test_case "basic deck" `Quick test_spice_parse_basic;
          Alcotest.test_case "crlf + ; comment" `Quick
            test_spice_crlf_and_semicolon_comment;
          Alcotest.test_case "error paths" `Quick test_spice_errors;
          Alcotest.test_case "unreadable path" `Quick test_spice_unreadable_path;
          Alcotest.test_case "matches .bench semantics" `Quick
            test_spice_simulates_like_bench;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "roundtrip unverified" `Quick
            test_snapshot_roundtrip_unverified;
          Alcotest.test_case "rejects garbage" `Quick test_snapshot_rejects_garbage;
          Alcotest.test_case "rejects truncation" `Quick
            test_snapshot_rejects_truncation;
          Alcotest.test_case "rejects header corruption" `Quick
            test_snapshot_rejects_header_corruption;
          Alcotest.test_case "detects payload corruption" `Quick
            test_snapshot_detects_payload_corruption;
          Alcotest.test_case "unreadable path" `Quick test_snapshot_unreadable_path;
        ] );
      ( "soa",
        [
          Alcotest.test_case "accessors match record view" `Quick
            test_soa_accessors_match_record_view;
        ] );
    ]
