(* Ingestion conformance check (the @ingest-check alias).

   Two gates, in order:

     1. Memory budget: a 1M-gate inverter chain is generated as a .bench
        file on disk and parsed through the streaming reader. The process
        peak RSS (VmHWM) after the parse must stay under a fixed budget —
        a whole-file reader, a per-line string list or a per-gate heap
        object regression each blow the budget by hundreds of MB at this
        size. Runs first so the corpus work below cannot inflate the
        high-water mark.

     2. Round-trip bit-identity on the golden corpus: every suite circuit
        is emitted to .bench text, re-parsed through the streaming reader,
        snapshotted to an LKN1 file and mmap-loaded back. The parsed and
        the mapped netlists must agree on the structural digest (which the
        snapshot header also carries) and produce bit-identical
        loading-aware estimates.

   Exits non-zero with a diagnostic on any violation. *)

module Params = Leakage_device.Params
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Bench_format = Leakage_circuit.Bench_format
module Snapshot = Leakage_circuit.Snapshot
module Characterize = Leakage_core.Characterize
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Report = Leakage_spice.Leakage_report
module Suite = Leakage_benchmarks.Suite
module Rng = Leakage_numeric.Rng

let failures = ref 0

let check what ok =
  if ok then Printf.printf "  ok: %s\n%!" what
  else begin
    incr failures;
    Printf.printf "  FAIL: %s\n%!" what
  end

(* ------------------------------------------------------ peak-RSS reading *)

(* VmHWM from /proc/self/status, in bytes; None off Linux (the budget gate
   then degrades to a parse-correctness check rather than failing). *)
let peak_rss_bytes () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec scan () =
          match input_line ic with
          | exception End_of_file -> None
          | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              Scanf.sscanf (String.sub line 6 (String.length line - 6))
                " %d kB" (fun kb -> Some (kb * 1024))
            else scan ()
        in
        scan ())

(* --------------------------------------------------- 1M-gate chain parse *)

let chain_gates = 1_000_000

(* The budget bounds the parser's working set plus the struct-of-arrays
   netlist itself (~40 MB of flat arrays at this size, plus interning
   tables and the OCaml heap). The historical whole-file reader held the
   complete text, a line list and a per-gate record graph at once — well
   over this line. *)
let rss_budget_bytes = 768 * 1024 * 1024

let write_chain_bench path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "INPUT(i0)\n";
      Printf.fprintf oc "OUTPUT(g%d)\n" chain_gates;
      for g = 1 to chain_gates do
        Printf.fprintf oc "g%d = NOT(%s)\n" g
          (if g = 1 then "i0" else Printf.sprintf "g%d" (g - 1))
      done)

let memory_gate () =
  Printf.printf "ingest-check: streaming parse of a %d-gate chain\n%!"
    chain_gates;
  let path = Filename.temp_file "ingest_chain" ".bench" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      write_chain_bench path;
      let t = Bench_format.parse_file path in
      check "chain gate count" (Netlist.gate_count t = chain_gates);
      check "chain interface (iterative elaboration survived the depth)"
        (Array.length (Netlist.inputs t) = 1
        && Array.length (Netlist.outputs t) = 1);
      match peak_rss_bytes () with
      | None -> Printf.printf "  skip: no /proc/self/status (not Linux)\n%!"
      | Some rss ->
        Printf.printf "  peak RSS %.1f MB (budget %d MB)\n%!"
          (float_of_int rss /. 1048576.0)
          (rss_budget_bytes / 1048576);
        check "peak RSS within budget" (rss <= rss_budget_bytes))

(* ------------------------------------------- golden-corpus round tripping *)

let coarse_grid = { Characterize.max_current = 3.0e-6; points = 5 }

let roundtrip_gate () =
  Printf.printf
    "ingest-check: parse -> snapshot -> mmap-load round trip on the corpus\n%!";
  let lib = Library.create ~grid:coarse_grid ~device:Params.d25 ~temp:300.0 () in
  let rng = Rng.create 7 in
  List.iter
    (fun (e : Suite.entry) ->
      let original = e.Suite.build () in
      let bench = Filename.temp_file "ingest_corpus" ".bench" in
      let snap = Filename.temp_file "ingest_corpus" ".lkn" in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun p -> try Sys.remove p with Sys_error _ -> ())
            [ bench; snap ])
        (fun () ->
          Bench_format.write_file bench original;
          let parsed = Bench_format.parse_file bench in
          Snapshot.save snap parsed;
          check
            (Printf.sprintf "%s: header digest matches parsed netlist"
               e.Suite.label)
            (Snapshot.digest_of_file snap = Netlist.digest parsed);
          let mapped = Snapshot.load snap in
          check
            (Printf.sprintf "%s: mapped digest" e.Suite.label)
            (Netlist.digest mapped = Netlist.digest parsed);
          let n_pi = Array.length (Netlist.inputs parsed) in
          let pattern =
            Array.init n_pi (fun _ ->
                if Rng.int rng 2 = 0 then Logic.Zero else Logic.One)
          in
          let totals_p, base_p = Estimator.estimate_totals lib parsed pattern in
          let totals_m, base_m = Estimator.estimate_totals lib mapped pattern in
          check
            (Printf.sprintf "%s: bit-identical estimate through the mapping"
               e.Suite.label)
            (totals_p = totals_m && base_p = base_m);
          check
            (Printf.sprintf "%s: estimate is finite" e.Suite.label)
            (Float.is_finite (Report.total totals_p))))
    Suite.all

let () =
  memory_gate ();
  roundtrip_gate ();
  if !failures > 0 then begin
    Printf.printf "ingest-check: %d failure(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf "ingest-check: all checks passed\n%!"
