(* Telemetry conformance check (the @trace-check alias).

   Runs a small estimation + incremental-batch workload on s838 twice — once
   with telemetry and tracing off, once with both on — and enforces the two
   halves of the observability contract:

     1. The emitted trace is well-formed Chrome trace-event JSON (parsed
        with a real, if minimal, JSON parser — not substring matching): a
        "traceEvents" array of complete/instant/metadata events, a
        thread_name metadata record per track, and at least one track per
        pool domain.
     2. Telemetry never perturbs results: every float the workload produces
        is bit-identical between the two runs.

   Exits non-zero with a diagnostic on any violation. *)

module Params = Leakage_device.Params
module Netlist = Leakage_circuit.Netlist
module Simulate = Leakage_circuit.Simulate
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Incremental = Leakage_incremental.Incremental
module Edit = Leakage_incremental.Edit
module Suite = Leakage_benchmarks.Suite
module Rng = Leakage_numeric.Rng
module Pool = Leakage_parallel.Pool
module Telemetry = Leakage_telemetry.Telemetry
module Trace = Leakage_telemetry.Trace

let jobs = 2
let n_vectors = 48 (* 3 chunks of Estimator.avg_chunk: real fan-out on 2 lanes *)
let n_batch = 32

(* ------------------------------------------------------------- workload *)

(* Everything observable the workload computes; compared with polymorphic
   equality, which on floats inside is exact bit comparison (modulo NaN,
   which the estimator never produces). *)
type fingerprint = {
  fp_loaded : Report.components;
  fp_base : Report.components;
  fp_totals : Report.components;
  fp_baseline : Report.components;
  fp_injection : float array;
}

let workload () =
  let nl = (Suite.find "s838").Suite.build () in
  let lib = Library.create ~device:Params.d25 ~temp:300.0 () in
  let rng = Rng.create 1 in
  let patterns = Simulate.random_patterns rng nl n_vectors in
  let pattern = List.hd patterns in
  let edits = List.init n_batch (fun _ -> Edit.random_resize rng nl) in
  Pool.with_pool ~jobs (fun pool ->
      let loaded, base =
        Estimator.average_over_vectors ~pool lib nl patterns
      in
      let session = Incremental.create lib nl pattern in
      Incremental.apply_batch ~pool session edits;
      {
        fp_loaded = loaded;
        fp_base = base;
        fp_totals = Incremental.totals session;
        fp_baseline = Incremental.baseline_totals session;
        fp_injection = Incremental.net_injection session;
      })

(* --------------------------------------------------- minimal JSON parser *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents buf
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 128 ->
              Buffer.add_char buf (Char.chr code)
            | Some _ -> Buffer.add_char buf '?' (* non-ASCII: shape only *)
            | None -> fail "bad \\u escape");
           pos := !pos + 4
         | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------ trace validation *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("trace-check: " ^ m); exit 1) fmt

let field obj key =
  match obj with
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let require_num event key =
  match field event key with
  | Some (Num f) -> f
  | _ -> die "event missing numeric %S" key

let validate_trace json =
  let root =
    match parse_json json with
    | v -> v
    | exception Bad m -> die "trace is not valid JSON: %s" m
  in
  let events =
    match field root "traceEvents" with
    | Some (Arr evs) -> evs
    | _ -> die "no \"traceEvents\" array"
  in
  (match field root "displayTimeUnit" with
   | Some (Str _) -> ()
   | _ -> die "no \"displayTimeUnit\"");
  let tracks = Hashtbl.create 8 in
  let named = Hashtbl.create 8 in
  let spans = ref 0 in
  List.iter
    (fun ev ->
      let name =
        match field ev "name" with
        | Some (Str s) -> s
        | _ -> die "event without a name"
      in
      let tid = int_of_float (require_num ev "tid") in
      ignore (require_num ev "pid");
      match field ev "ph" with
      | Some (Str "X") ->
        let dur = require_num ev "dur" in
        ignore (require_num ev "ts");
        if dur < 0.0 then die "span %S has negative duration" name;
        incr spans;
        Hashtbl.replace tracks tid ()
      | Some (Str "i") -> Hashtbl.replace tracks tid ()
      | Some (Str "M") ->
        if name <> "thread_name" then die "unknown metadata event %S" name;
        Hashtbl.replace named tid ()
      | _ -> die "event %S has a bad \"ph\"" name)
    events;
  if !spans = 0 then die "no complete (\"ph\":\"X\") spans recorded";
  Hashtbl.iter
    (fun tid () ->
      if not (Hashtbl.mem named tid) then
        die "track %d has no thread_name metadata" tid)
    tracks;
  (* main domain + at least one worker: the pool fan-out must be visible *)
  if Hashtbl.length tracks < 2 then
    die "only %d track(s): expected one per pool domain" (Hashtbl.length tracks);
  (!spans, Hashtbl.length tracks)

let () =
  let quiet = workload () in
  Telemetry.set_enabled true;
  Trace.start ();
  let observed = workload () in
  Trace.stop ();
  if Stdlib.compare quiet observed <> 0 then
    die "telemetry perturbed the results: traced run differs bit-for-bit";
  let spans, tracks = validate_trace (Trace.to_json ()) in
  let snap = Telemetry.Snapshot.take () in
  List.iter
    (fun name ->
      if Telemetry.Snapshot.counter_total snap name < 1 then
        die "counter %S was never recorded" name)
    [ "pool.regions"; "pool.items"; "library.misses"; "dc.solves";
      "estimator.estimates"; "incr.edits"; "incr.batches" ];
  Printf.printf
    "trace-check OK: %d spans on %d tracks, bit-identical with tracing off\n"
    spans tracks
