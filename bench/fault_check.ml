(* fault_check: fault-injection gate for the serve subsystem.

   Two daemons run as forked children, sharing a --peer-dir; a failover
   client replays a deterministic edit workload on s838 and, at seeded
   random batch indices, the harness raw-sends the next batch to the
   serving daemon WITHOUT reading the reply (a request is in flight at the
   moment of death), SIGKILLs that daemon, and respawns it over a fresh
   state dir. The run fails unless:

   1. the client's retry/failover policy rides through every kill with zero
      surfaced errors, each re-open adopting the peer-shipped checkpoint
      (status Restored) on whichever daemon answers;
   2. the final refreshed loaded/baseline totals are bit-identical to one
      unfaulted sequential replay in a direct Incremental session — i.e. a
      kill loses at most the in-flight batch, and replaying it converges
      because every protocol edit sets absolute state;
   3. a separate rate-limited daemon (token buckets on) saturates under a
      query burst: the client sees Over_quota, honors the retry-after
      hints, and still completes every request with zero failures.

   The kill-point seed and the chosen kill points land in the JSON
   artifact, so any run can be replayed deterministically with -seed. *)

module Params = Leakage_device.Params
module Physics = Leakage_device.Physics
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Incremental = Leakage_incremental.Incremental
module Suite = Leakage_benchmarks.Suite
module Telemetry = Leakage_telemetry.Telemetry
module Wire = Leakage_server.Wire
module Protocol = Leakage_server.Protocol
module Server = Leakage_server.Server
module Client = Leakage_server.Client

let circuit = "s838"
let n_batches = 12

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if cond then Printf.printf "ok: %s\n%!" msg
      else begin
        Printf.eprintf "fault_check: FAIL %s\n%!" msg;
        exit 1
      end)
    fmt

let eq_components (a : Report.components) (b : Report.components) =
  Float.equal a.Report.isub b.Report.isub
  && Float.equal a.Report.igate b.Report.igate
  && Float.equal a.Report.ibtbt b.Report.ibtbt

(* same deterministic-workload idea as serve_check, over more batches *)
let workload_batches nl =
  let gates = Netlist.gates nl in
  let n = Array.length gates in
  let n_in = Array.length (Netlist.inputs nl) in
  List.init n_batches (fun b ->
      List.init 4 (fun k ->
          let pick = (b * 41 + k * 17 + 7) mod n in
          match k with
          | 0 ->
            Protocol.Resize (pick, 1.0 +. (float_of_int ((b + k) mod 6) /. 5.0))
          | 1 -> Protocol.Set_input ((b * 13 + 2) mod n_in, (b + k) mod 2 = 0)
          | _ ->
            let rec arity2 i =
              if Gate.arity gates.(i).Netlist.kind = 2 then i
              else arity2 ((i + 1) mod n)
            in
            let g = arity2 pick in
            Protocol.Retype (g, if (b + k) mod 2 = 0 then "nand2" else "nor2")))

(* ------------------------------------------------------ forked daemons *)

type daemon = {
  sock : string;
  mutable state_dir : string;
  mutable pid : int;
  mutable gen : int;
}

let spawn ~sock ~state_dir ~peer_dir ?tenant_rate ?tenant_burst () =
  match Unix.fork () with
  | 0 ->
    (* the daemon child: single executor and no pool domains keep it
       lightweight; it dies only by signal or parent request *)
    (try
       Telemetry.set_enabled true;
       Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
       let server =
         Server.create ~executors:1 ~jobs:1 ~quota:8 ~max_sessions:4
           ~state_dir ~peer_dir ?tenant_rate ?tenant_burst ~socket:sock ()
       in
       Server.run server;
       exit 0
     with _ -> exit 1)
  | pid -> pid

let wait_ready sock =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      if Unix.gettimeofday () > deadline then
        failwith ("daemon on " ^ sock ^ " did not come up");
      Unix.sleepf 0.02;
      go ()
  in
  go ()

let sigkill d =
  Unix.kill d.pid Sys.sigkill;
  ignore (Unix.waitpid [] d.pid)

(* Put a request in flight at the instant of death: write a whole Apply
   frame to the victim on a throwaway connection and never read the reply.
   Depending on where the SIGKILL lands the daemon has seen none, some, or
   all of it — every case must converge after failover replay. *)
let raw_send_apply sock ~session ~edits =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_UNIX sock);
     Wire.write_frame fd
       (Protocol.encode_request (Protocol.Apply_batch { session; edits }))
   with Unix.Unix_error _ -> ());
  fd

(* ---------------------------------------------------------------- json *)

let write_artifact path ~seed ~kill_points ~reopens ~adoptions ~client_failures
    ~over_quota ~bit_identical ~(loaded : Report.components) =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"fault_check\",\n\
    \  \"circuit\": %S,\n\
    \  \"seed\": %d,\n\
    \  \"batches\": %d,\n\
    \  \"kill_points\": [%s],\n\
    \  \"reopens\": %d,\n\
    \  \"adoptions\": %d,\n\
    \  \"client_failures\": %d,\n\
    \  \"over_quota_backoffs\": %d,\n\
    \  \"bit_identical\": %b,\n\
    \  \"loaded_total_a\": %.17g\n\
     }\n"
    circuit seed n_batches
    (String.concat ", " (List.map string_of_int kill_points))
    reopens adoptions client_failures over_quota bit_identical
    (Report.total loaded);
  close_out oc

(* crude field scanners, enough for the shapes we write ourselves *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let field_str json name =
  let needle = Printf.sprintf "\"%s\": " name in
  match String.index_opt json ' ' with
  | _ ->
    let nl = String.length needle and jl = String.length json in
    let rec scan i =
      if i + nl > jl then None
      else if String.sub json i nl = needle then begin
        let stop = ref (i + nl) in
        while !stop < jl && json.[!stop] <> ',' && json.[!stop] <> '\n' do
          incr stop
        done;
        Some (String.sub json (i + nl) (!stop - (i + nl)))
      end
      else scan (i + 1)
    in
    scan 0

let field_int json name =
  match field_str json name with
  | None -> failwith ("missing field " ^ name)
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> failwith ("field " ^ name ^ " is not an int: " ^ s))

(* ----------------------------------------------------------------- run *)

let run ~seed ~out =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "leak-fault-check-%d" (Unix.getpid ()))
  in
  Unix.mkdir root 0o755;
  let peer_dir = Filename.concat root "peer" in
  let fresh_state =
    let n = ref 0 in
    fun tag ->
      incr n;
      Filename.concat root (Printf.sprintf "state-%s-%d" tag !n)
  in
  let daemons =
    [|
      { sock = Filename.concat root "a.sock"; state_dir = ""; pid = 0; gen = 0 };
      { sock = Filename.concat root "b.sock"; state_dir = ""; pid = 0; gen = 0 };
    |]
  in
  let live = ref [] in
  let start tag d =
    d.state_dir <- fresh_state tag;
    d.pid <- spawn ~sock:d.sock ~state_dir:d.state_dir ~peer_dir ();
    d.gen <- d.gen + 1;
    live := d.pid :: !live;
    wait_ready d.sock
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !live;
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root))))
  @@ fun () ->
  start "a" daemons.(0);
  start "b" daemons.(1);

  let nl = (Suite.find circuit).Suite.build () in
  let pattern = String.make (Array.length (Netlist.inputs nl)) '0' in
  let batches = workload_batches nl in

  (* >= 3 kill points at seeded random batch indices (never before the
     first batch, so there is always shipped state to adopt) *)
  let rng = Random.State.make [| seed; 0xfa171 |] in
  let n_kills = 3 + Random.State.int rng 2 in
  let kill_points =
    let rec draw acc =
      if List.length acc >= n_kills then List.sort compare acc
      else
        let p = 1 + Random.State.int rng (n_batches - 1) in
        draw (if List.mem p acc then acc else p :: acc)
    in
    draw []
  in
  Printf.printf "fault_check: seed %d, killing before batches [%s]\n%!" seed
    (String.concat "; " (List.map string_of_int kill_points));

  let policy =
    {
      Client.retries = 8;
      backoff_ms = 15.0;
      max_backoff_ms = 400.0;
      timeout_ms = Some 10_000.0;
      jitter = 0.25;
    }
  in
  let c =
    Client.connect ~policy ~seed
      [ Client.Unix_path daemons.(0).sock; Client.Unix_path daemons.(1).sock ]
  in
  let s =
    Client.Failover.open_session c ~circuit:(Protocol.Builtin circuit)
      ~pattern ()
  in
  let direct =
    Incremental.create
      (Library.create ~device:Params.d25
         ~temp:(Physics.celsius_to_kelvin 25.0) ())
      nl
      (Logic.vector_of_string pattern)
  in
  let adoptions = ref 0 in
  let client_failures = ref 0 in
  List.iteri
    (fun i batch ->
      if List.mem i kill_points then begin
        (* the victim is whichever daemon the client is attached to *)
        let victim =
          match Client.current_endpoint c with
          | Some (Client.Unix_path p) when p = daemons.(1).sock -> daemons.(1)
          | _ -> daemons.(0)
        in
        let raw_fd =
          raw_send_apply victim.sock ~session:(Client.Failover.session_id s)
            ~edits:batch
        in
        sigkill victim;
        (try Unix.close raw_fd with Unix.Unix_error _ -> ());
        live := List.filter (fun p -> p <> victim.pid) !live;
        (* respawn over a FRESH state dir: anything the successor — or the
           reborn victim — restores can only have come through peer_dir *)
        let tag = if victim == daemons.(0) then "a" else "b" in
        let before = Client.Failover.reopens s in
        start tag victim;
        (match Client.Failover.apply s batch with
         | _ -> ()
         | exception _ -> incr client_failures);
        if
          Client.Failover.reopens s > before
          && Client.Failover.status s = Protocol.Restored
        then incr adoptions
      end
      else begin
        match Client.Failover.apply s batch with
        | _ -> ()
        | exception _ -> incr client_failures
      end;
      Incremental.apply_batch direct
        (List.map Protocol.edit_to_incremental batch))
    batches;
  check (!client_failures = 0) "workload survived with zero client failures";
  check
    (Client.Failover.reopens s >= n_kills)
    "every kill forced a failover re-open (%d reopens >= %d kills)"
    (Client.Failover.reopens s) n_kills;
  check
    (!adoptions = n_kills)
    "every failover adopted a peer-shipped checkpoint (%d of %d)" !adoptions
    n_kills;

  (* a refreshed query is a function of session state alone, so faulted
     serve state and the unfaulted direct replay must agree bit-for-bit *)
  let loaded, baseline =
    match Client.Failover.query s ~refresh:true () with
    | v -> v
    | exception e ->
      Printf.eprintf "fault_check: FAIL final query: %s\n%!"
        (Printexc.to_string e);
      exit 1
  in
  Incremental.refresh direct;
  let bit_identical =
    eq_components loaded (Incremental.totals direct)
    && eq_components baseline (Incremental.baseline_totals direct)
  in
  check bit_identical
    "final totals bit-identical to the unfaulted sequential replay";

  (* ---- token-bucket saturation on a rate-limited daemon ---- *)
  let rated =
    { sock = Filename.concat root "c.sock"; state_dir = ""; pid = 0; gen = 0 }
  in
  rated.state_dir <- fresh_state "c";
  rated.pid <-
    spawn ~sock:rated.sock ~state_dir:rated.state_dir ~peer_dir
      ~tenant_rate:50.0 ~tenant_burst:4.0 ();
  live := rated.pid :: !live;
  wait_ready rated.sock;
  let cq =
    Client.connect
      ~policy:
        {
          Client.retries = 12;
          backoff_ms = 5.0;
          max_backoff_ms = 250.0;
          timeout_ms = Some 10_000.0;
          jitter = 0.25;
        }
      ~seed:(seed + 1)
      [ Client.Unix_path rated.sock ]
  in
  let oq =
    Client.open_session cq ~circuit:(Protocol.Builtin circuit) ~pattern ()
  in
  let sat_failures = ref 0 in
  for _ = 1 to 40 do
    match Client.query cq ~session:oq.Client.session () with
    | _ -> ()
    | exception _ -> incr sat_failures
  done;
  let st = Client.stats cq in
  check (!sat_failures = 0)
    "saturation burst completed with zero client-visible failures";
  check
    (st.Client.over_quota_waits > 0)
    "token bucket pushed back (%d over-quota backoffs honored)"
    st.Client.over_quota_waits;
  Client.close cq;
  Client.close c;

  write_artifact out ~seed ~kill_points
    ~reopens:(Client.Failover.reopens s)
    ~adoptions:!adoptions ~client_failures:!client_failures
    ~over_quota:st.Client.over_quota_waits ~bit_identical ~loaded;
  Printf.printf "fault_check: all checks passed, artifact in %s\n%!" out

(* --------------------------------------------------------------- check *)

let check_artifact path =
  let json = read_file path in
  let kill_count =
    (* the array field needs its own scan: commas inside the brackets *)
    match String.index_opt json '[' with
    | None -> 0
    | Some i -> (
      match String.index_from_opt json i ']' with
      | None -> 0
      | Some j ->
        List.length
          (List.filter
             (fun p -> String.trim p <> "")
             (String.split_on_char ','
                (String.sub json (i + 1) (j - i - 1)))))
  in
  check (kill_count >= 3) "artifact records >= 3 kill points (%d)" kill_count;
  check
    (field_str json "seed" <> None)
    "artifact records the kill-point seed for deterministic replay";
  check
    (field_str json "bit_identical" = Some "true")
    "faulted run was bit-identical to the unfaulted replay";
  check
    (field_int json "client_failures" = 0)
    "zero client-visible failures";
  check
    (field_int json "reopens" >= kill_count)
    "at least one failover re-open per kill";
  check
    (field_int json "adoptions" = kill_count)
    "every failover adopted a peer checkpoint";
  check
    (field_int json "over_quota_backoffs" > 0)
    "saturation phase hit the token bucket and backed off";
  Printf.printf "fault_check: artifact %s validated\n%!" path

let () =
  let seed = ref 42 in
  let out = ref "BENCH_fault.json" in
  let check_path = ref None in
  let rec parse = function
    | [] -> ()
    | "-seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "-o" :: v :: rest ->
      out := v;
      parse rest
    | "-check" :: v :: rest ->
      check_path := Some v;
      parse rest
    | a :: _ -> failwith ("unknown argument " ^ a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !check_path with
  | Some path -> check_artifact path
  | None -> run ~seed:!seed ~out:!out
