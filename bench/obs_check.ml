(* obs_check: CI gate for the observability layer.

   Runs the same deterministic two-tenant workload twice against in-process
   daemons — once uninstrumented (telemetry off, no log, no sidecar), once
   fully instrumented (telemetry on, JSONL log at debug with a 0ms slow
   threshold, HTTP sidecar, fast runtime sampler) — and fails unless:

   1. every wire reply's numeric payload is bit-identical between the two
      runs (observability must never steer a result);
   2. /metrics scraped over real HTTP mid-workload parses with the strict
      Prometheus grammar (no substring probes), histograms are structurally
      valid (le monotone, buckets cumulative, +Inf = _count), and the
      exposition carries the per-op/per-tenant labeled latency family plus
      runtime gauges;
   3. /healthz answers 200/"ok" while serving;
   4. every JSONL log line parses as one JSON object with ts/level/event,
      and every request event carries a request id (slow-request events
      included — the 0ms threshold forces one per request);
   5. leakctl top's view model renders non-empty rate and percentile
      columns from two successive metrics snapshots. *)

module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report
module Suite = Leakage_benchmarks.Suite
module Telemetry = Leakage_telemetry.Telemetry
module Log = Leakage_telemetry.Log
module Prometheus = Leakage_telemetry.Prometheus
module Protocol = Leakage_server.Protocol
module Server = Leakage_server.Server
module Client = Leakage_server.Client
module Top_view = Leakage_server.Top_view

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if cond then Printf.printf "ok: %s\n%!" msg
      else begin
        Printf.eprintf "obs_check: FAIL %s\n%!" msg;
        exit 1
      end)
    fmt

let eq_components (a : Report.components) (b : Report.components) =
  Float.equal a.Report.isub b.Report.isub
  && Float.equal a.Report.igate b.Report.igate
  && Float.equal a.Report.ibtbt b.Report.ibtbt

(* ------------------------------------------------- tiny strict JSON *)

(* Enough JSON to validate log lines and the metrics meta block without a
   dependency; strict about structure, lenient about number formats. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r')
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("bad literal " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          if !pos + 1 >= n then fail "dangling escape";
          (match s.[!pos + 1] with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 't' -> Buffer.add_char b '\t'
           | 'r' -> Buffer.add_char b '\r'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'u' ->
             if !pos + 5 >= n then fail "bad \\u escape";
             (* decode to '?' — log validation only needs structure *)
             Buffer.add_char b '?';
             pos := !pos + 4
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          pos := !pos + 2;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        incr pos
      done;
      if !pos = start then fail "unexpected character";
      (match float_of_string_opt (String.sub s start (!pos - start)) with
       | Some v -> Num v
       | None -> fail "bad number")
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field o k =
  match o with Obj kvs -> List.assoc_opt k kvs | _ -> None

(* --------------------------------------------------------- workload *)

(* Each tenant drives its own circuit, so per-tenant results are a pure
   function of its edit script — independent of cross-tenant
   interleaving, which is exactly what makes the two runs comparable. *)
let tenants = [ ("alice", "s838"); ("bob", "alu88") ]

let batches_for nl =
  let n = Array.length (Netlist.gates nl) in
  let n_in = Array.length (Netlist.inputs nl) in
  List.init 6 (fun b ->
      List.init 3 (fun k ->
          let pick = (b * 41 + k * 17 + 7) mod n in
          if k = 2 then Protocol.Set_input ((b * 13 + 1) mod n_in, b mod 2 = 0)
          else Protocol.Resize (pick, 1.0 +. (float_of_int ((b + k) mod 5) /. 8.0))))

(* run one tenant's script; returns every queried (loaded, baseline) *)
let run_tenant sock (tenant, circuit) =
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let nl = (Suite.find circuit).Suite.build () in
  let pattern = String.make (Array.length (Netlist.inputs nl)) '0' in
  let o =
    Client.open_session c ~tenant ~circuit:(Protocol.Builtin circuit) ~pattern
      ()
  in
  List.map
    (fun batch ->
      ignore (Client.apply_batch c ~session:o.Client.session batch);
      Client.query c ~session:o.Client.session ())
    (batches_for nl)

let run_workload sock =
  let results = Array.make (List.length tenants) [] in
  let threads =
    List.mapi
      (fun i spec ->
        Thread.create (fun () -> results.(i) <- run_tenant sock spec) ())
      tenants
  in
  List.iter Thread.join threads;
  Array.to_list results

let with_server ?http_port ?slow_us ?sample_interval ~dir f =
  Unix.mkdir dir 0o755;
  let sock = Filename.concat dir "leak.sock" in
  let server =
    Server.create ?http_port ?slow_us ?sample_interval ~executors:2 ~jobs:2
      ~quota:8 ~max_sessions:4 ~version:"obs-check"
      ~state_dir:(Filename.concat dir "state") ~socket:sock ()
  in
  let th = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop server;
      Thread.join th)
    (fun () -> f server sock)

(* ------------------------------------------------------- raw HTTP *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req =
    Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" path
  in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
  in
  drain ();
  let raw = Buffer.contents buf in
  let rec find_sep i =
    if i + 3 >= String.length raw then None
    else if String.sub raw i 4 = "\r\n\r\n" then Some i
    else find_sep (i + 1)
  in
  match find_sep 0 with
  | None -> failwith "http_get: no header/body separator"
  | Some i ->
    let head = String.sub raw 0 i in
    let body = String.sub raw (i + 4) (String.length raw - i - 4) in
    let status =
      match String.split_on_char ' ' head with
      | _ :: code :: _ -> int_of_string code
      | _ -> failwith "http_get: bad status line"
    in
    (status, body)

(* ------------------------------------------------------------- main *)

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "leak-obs-check-%d" (Unix.getpid ()))
  in
  Unix.mkdir root 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root))))
  @@ fun () ->
  (* ---- pass 1: uninstrumented baseline ---- *)
  Telemetry.set_enabled false;
  let plain =
    with_server ~dir:(Filename.concat root "plain") (fun _ sock ->
        run_workload sock)
  in
  check true "uninstrumented baseline: %d tenants ran"
    (List.length plain);

  (* ---- pass 2: fully instrumented ---- *)
  Telemetry.set_enabled true;
  Telemetry.reset ();
  let log_path = Filename.concat root "serve.jsonl" in
  Log.enable_file ~level:Log.Debug log_path;
  let instrumented, scrapes, healthz, top_view =
    with_server
      ~dir:(Filename.concat root "instr")
      ~http_port:0 ~slow_us:0.0 ~sample_interval:0.05
      (fun server sock ->
        let port =
          match Server.http_port server with
          | Some p -> p
          | None -> failwith "no http port bound"
        in
        (* scrape concurrently with the workload *)
        let mid_scrapes = ref [] in
        let scraper_stop = ref false in
        let scraper =
          Thread.create
            (fun () ->
              let scrape () =
                mid_scrapes := http_get port "/metrics" :: !mid_scrapes
              in
              scrape ();
              while not !scraper_stop do
                Thread.delay 0.02;
                scrape ()
              done)
            ()
        in
        let c = Client.connect_unix sock in
        let before = (Client.metrics_snapshot c).Client.snapshot in
        let results = run_workload sock in
        scraper_stop := true;
        Thread.join scraper;
        let final = http_get port "/metrics" in
        let healthz = http_get port "/healthz" in
        let after = Client.metrics_snapshot c in
        Client.close c;
        let view =
          Top_view.make ~uptime_s:after.Client.uptime_s
            ~version:after.Client.version ~newer:after.Client.snapshot
            ~older:before
        in
        (results, final :: !mid_scrapes, healthz, view))
  in
  Log.disable ();

  (* ---- 1. bit-identity ---- *)
  List.iteri
    (fun i (a, b) ->
      let tenant = fst (List.nth tenants i) in
      check (List.length a = List.length b) "tenant %s: reply counts match"
        tenant;
      List.iteri
        (fun j ((la, ba), (lb, bb)) ->
          if not (eq_components la lb && eq_components ba bb) then
            check false "tenant %s query %d bit-identical" tenant j)
        (List.combine a b);
      check true "tenant %s: %d wire replies bit-identical to uninstrumented"
        tenant (List.length a))
    (List.combine plain instrumented);

  (* ---- 2. exposition validity ---- *)
  check (List.length scrapes >= 2) "%d /metrics scrapes collected"
    (List.length scrapes);
  List.iter
    (fun (status, _) -> if status <> 200 then check false "scrape status %d" status)
    scrapes;
  let parsed =
    List.map
      (fun (_, body) ->
        match Prometheus.parse body with
        | families -> families
        | exception Prometheus.Parse_error (line, msg) ->
          check false "exposition parses (line %d: %s)" line msg;
          [])
      scrapes
  in
  check true "every scrape parses with the strict Prometheus grammar";
  List.iter
    (fun families ->
      match Prometheus.validate_histograms families with
      | [] -> ()
      | errs -> check false "histogram structure: %s" (List.hd errs))
    parsed;
  check true "histograms are structurally valid in every scrape";
  let final_families = List.hd parsed in
  (match Prometheus.find final_families "serve_request_us" with
   | None -> check false "serve_request_us family present"
   | Some fam ->
     check (fam.Prometheus.fam_type = "histogram")
       "serve_request_us is a histogram family";
     let tenants_seen =
       List.filter_map
         (fun (s : Prometheus.sample) -> List.assoc_opt "tenant" s.labels)
         fam.Prometheus.samples
       |> List.sort_uniq compare
     in
     let ops_seen =
       List.filter_map
         (fun (s : Prometheus.sample) -> List.assoc_opt "op" s.labels)
         fam.Prometheus.samples
       |> List.sort_uniq compare
     in
     check
       (List.mem "alice" tenants_seen && List.mem "bob" tenants_seen)
       "latency series labeled per tenant (%s)"
       (String.concat "," tenants_seen);
     check
       (List.mem "open" ops_seen && List.mem "apply" ops_seen
        && List.mem "query" ops_seen)
       "latency series labeled per op (%s)" (String.concat "," ops_seen));
  List.iter
    (fun g ->
      match Prometheus.find final_families g with
      | Some fam ->
        check
          (fam.Prometheus.fam_type = "gauge"
           && fam.Prometheus.samples <> [])
          "runtime gauge %s exposed" g
      | None -> check false "runtime gauge %s exposed" g)
    [ "runtime_gc_minor_words"; "runtime_gc_heap_words"; "runtime_rss_bytes" ];

  (* ---- 3. healthz ---- *)
  let status, body = healthz in
  check (status = 200) "/healthz answers 200 while serving";
  (match parse_json body with
   | j ->
     check (obj_field j "status" = Some (Str "ok")) "/healthz status is ok";
     check
       (match obj_field j "uptime_s" with Some (Num u) -> u >= 0.0 | _ -> false)
       "/healthz reports uptime"
   | exception Bad_json m -> check false "/healthz body is JSON (%s)" m);

  (* ---- 4. JSONL log ---- *)
  let lines =
    let ic = open_in log_path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    go []
  in
  check (lines <> []) "log has %d lines" (List.length lines);
  let requests = ref 0 and slow = ref 0 in
  List.iteri
    (fun i line ->
      match parse_json line with
      | exception Bad_json m -> check false "log line %d parses (%s)" (i + 1) m
      | j ->
        let has k = obj_field j k <> None in
        if not (has "ts" && has "level" && has "event") then
          check false "log line %d has ts/level/event" (i + 1);
        (match obj_field j "event" with
         | Some (Str ("request" | "request.slow" as ev)) ->
           if ev = "request" then incr requests else incr slow;
           (match obj_field j "rid" with
            | Some (Str rid) when rid <> "" -> ()
            | _ -> check false "log line %d (%s) carries a rid" (i + 1) ev)
         | _ -> ()))
    lines;
  check (!requests > 0) "%d request events logged, each with a rid" !requests;
  check (!slow > 0) "%d slow-request events above the 0ms threshold" !slow;

  (* ---- 5. leakctl top view model ---- *)
  check (top_view.Top_view.ops <> []) "top renders %d op rows"
    (List.length top_view.Top_view.ops);
  List.iter
    (fun (r : Top_view.op_row) ->
      if not (r.rate > 0.0 && r.p50_us > 0.0 && r.p99_us >= r.p50_us) then
        check false "op %s has positive rate and ordered percentiles" r.op)
    top_view.Top_view.ops;
  check true "op rows carry positive rates and ordered p50/p99";
  let top_tenants =
    List.map (fun (r : Top_view.tenant_row) -> r.tenant)
      top_view.Top_view.tenants
  in
  check
    (List.mem "alice" top_tenants && List.mem "bob" top_tenants)
    "top shows both tenants (%s)" (String.concat "," top_tenants);
  let rendered = Format.asprintf "%a" Top_view.pp top_view in
  check (String.length rendered > 0) "top frame renders (%d bytes)"
    (String.length rendered);

  Printf.printf "obs_check: all checks passed\n%!"
