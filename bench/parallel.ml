(* Domain-parallel estimation benchmark.

   Runs the vector-resampling Monte Carlo (Vector_mc.resample) on Alu8 and
   Mult8 sequentially and on 2/4/8-domain pools, checks that every parallel
   run is bit-identical to the sequential one, and emits the timings as
   BENCH_parallel.json. Each configuration gets an untimed warm-up pass so
   worker-domain characterization caches (Library uses per-domain caches)
   are populated before the timed pass.

   The host's core count is recorded as "host_cores": -check validates the
   schema and bit-identity unconditionally, but only enforces speedup >= 1.0
   for pool sizes the machine can actually run in parallel — a single-core
   CI box cannot speed anything up, and timings there would only measure
   scheduling overhead.

     parallel.exe [-o FILE] [-samples N] [-seed N] [-domains N]  write JSON
     parallel.exe -check FILE                        validate a JSON file *)

module Params = Leakage_device.Params
module Netlist = Leakage_circuit.Netlist
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Vector_mc = Leakage_incremental.Vector_mc
module Suite = Leakage_benchmarks.Suite
module Pool = Leakage_parallel.Pool
module Telemetry = Leakage_telemetry.Telemetry

let circuits = [ "alu88"; "mult88" ]
let pool_sizes = [ 2; 4; 8 ]

type row = {
  name : string;
  gates : int;
  domains : int;
  ms : float;
  speedup : float;
  bit_identical : bool;
}

let identical (a : Vector_mc.result) (b : Vector_mc.result) =
  a.Vector_mc.totals = b.Vector_mc.totals
  && a.Vector_mc.baselines = b.Vector_mc.baselines
  && a.Vector_mc.mean_components = b.Vector_mc.mean_components
  && a.Vector_mc.mean_shift_percent = b.Vector_mc.mean_shift_percent

let timed_resample ?pool ~samples ~seed lib nl =
  (* warm-up: populate (per-domain) characterization caches *)
  ignore (Vector_mc.resample ?pool ~seed ~samples lib nl);
  let t0 = Unix.gettimeofday () in
  let r = Vector_mc.resample ?pool ~seed ~samples lib nl in
  (r, (Unix.gettimeofday () -. t0) *. 1e3)

let run_circuit ~samples ~seed ~max_domains name =
  let nl = (Suite.find name).Suite.build () in
  let lib = Library.create ~device:Params.d25 ~temp:300.0 () in
  let seq, seq_ms = timed_resample ~samples ~seed lib nl in
  let base =
    { name; gates = Netlist.gate_count nl; domains = 1; ms = seq_ms;
      speedup = 1.0; bit_identical = true }
  in
  let parallel_rows =
    List.filter_map
      (fun d ->
        if d > max_domains then None
        else
          Some
            (Pool.with_pool ~jobs:d (fun pool ->
                 let r, ms = timed_resample ~pool ~samples ~seed lib nl in
                 { base with domains = d; ms; speedup = seq_ms /. ms;
                   bit_identical = identical seq r })))
      pool_sizes
  in
  base :: parallel_rows

(* ------------------------------------------------------------- JSON emit *)

(* Counters the run is expected to have exercised; -check asserts on them. *)
let metric_names =
  [ "pool.regions"; "pool.items"; "library.hits"; "library.misses";
    "dc.solves" ]

let emit_metrics oc =
  let p fmt = Printf.fprintf oc fmt in
  let snap = Telemetry.Snapshot.take () in
  p "  \"metrics\": {\n";
  List.iteri
    (fun i name ->
      p "    \"%s\": %d%s\n" name
        (Telemetry.Snapshot.counter_total snap name)
        (if i = List.length metric_names - 1 then "" else ","))
    metric_names;
  p "  }\n"

let emit oc ~samples ~seed ~host_cores rows =
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"parallel\",\n";
  p "  \"samples\": %d,\n" samples;
  p "  \"seed\": %d,\n" seed;
  p "  \"host_cores\": %d,\n" host_cores;
  (* the fixed chunk widths the bit-identity contract depends on: a result
     is only comparable across builds that agree on these *)
  p "  \"avg_chunk\": %d,\n" Estimator.avg_chunk;
  p "  \"mc_chunk\": %d,\n" Vector_mc.mc_chunk;
  p "  \"circuits\": [\n";
  List.iteri
    (fun i r ->
      p "    {\n";
      p "      \"name\": \"%s\",\n" r.name;
      p "      \"gates\": %d,\n" r.gates;
      p "      \"domains\": %d,\n" r.domains;
      p "      \"ms\": %.3f,\n" r.ms;
      p "      \"speedup\": %.3f,\n" r.speedup;
      p "      \"bit_identical\": %b\n" r.bit_identical;
      p "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  emit_metrics oc;
  p "}\n"

(* ------------------------------------------------------ minimal JSON read *)

(* Just enough parsing to validate the file this program writes: find a key
   inside a chunk and read the scalar after the colon. *)

let find_key chunk key =
  let needle = "\"" ^ key ^ "\":" in
  let nl = String.length needle and cl = String.length chunk in
  let rec scan i =
    if i + nl > cl then None
    else if String.sub chunk i nl = needle then Some (i + nl)
    else scan (i + 1)
  in
  scan 0

let scalar_after chunk pos =
  let cl = String.length chunk in
  let rec skip i = if i < cl && chunk.[i] = ' ' then skip (i + 1) else i in
  let start = skip pos in
  let rec stop i =
    if i >= cl then i
    else match chunk.[i] with ',' | '}' | ']' | '\n' -> i | _ -> stop (i + 1)
  in
  String.trim (String.sub chunk start (stop start - start))

let num_field chunk key =
  match find_key chunk key with
  | None -> failwith (Printf.sprintf "missing numeric field %S" key)
  | Some pos -> (
    match float_of_string_opt (scalar_after chunk pos) with
    | Some f -> f
    | None -> failwith (Printf.sprintf "field %S is not a number" key))

let str_field chunk key =
  match find_key chunk key with
  | None -> failwith (Printf.sprintf "missing string field %S" key)
  | Some pos ->
    let s = scalar_after chunk pos in
    if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"'
    then String.sub s 1 (String.length s - 2)
    else failwith (Printf.sprintf "field %S is not a string" key)

let bool_field chunk key =
  match find_key chunk key with
  | None -> failwith (Printf.sprintf "missing boolean field %S" key)
  | Some pos -> (
    match scalar_after chunk pos with
    | "true" -> true
    | "false" -> false
    | other -> failwith (Printf.sprintf "field %S is not a boolean: %s" key other))

(* split the circuits array into one chunk per "{ ... }" object, stopping
   at the array's closing bracket (the metrics block follows it) *)
let circuit_chunks s =
  match find_key s "circuits" with
  | None -> failwith "missing \"circuits\" array"
  | Some pos ->
    let cl = String.length s in
    let chunks = ref [] in
    let depth = ref 0 and start = ref (-1) and i = ref pos in
    let stop = ref false in
    while (not !stop) && !i < cl do
      (match s.[!i] with
       | '{' ->
         if !depth = 0 then start := !i;
         incr depth
       | '}' ->
         decr depth;
         if !depth = 0 && !start >= 0 then
           chunks := String.sub s !start (!i - !start + 1) :: !chunks
       | ']' -> if !depth = 0 then stop := true
       | _ -> ());
      incr i
    done;
    List.rev !chunks

let check path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  if str_field s "benchmark" <> "parallel" then
    failwith "benchmark field is not \"parallel\"";
  if num_field s "samples" <= 0.0 then failwith "samples must be positive";
  let host_cores = int_of_float (num_field s "host_cores") in
  if host_cores < 1 then failwith "host_cores must be >= 1";
  (* stale chunk constants would invalidate every bit-identity claim below *)
  let chunk_const key expected =
    let v = int_of_float (num_field s key) in
    if v <> expected then
      failwith
        (Printf.sprintf "%S is %d but this build uses %d — regenerate" key v
           expected)
  in
  chunk_const "avg_chunk" Estimator.avg_chunk;
  chunk_const "mc_chunk" Vector_mc.mc_chunk;
  let chunks = circuit_chunks s in
  let seen =
    List.map
      (fun chunk ->
        let name = str_field chunk "name" in
        let domains = int_of_float (num_field chunk "domains") in
        let tag = Printf.sprintf "%s@%dd" name domains in
        if num_field chunk "gates" <= 0.0 then
          failwith (tag ^ ": \"gates\" must be positive");
        if domains < 1 then failwith (tag ^ ": \"domains\" must be >= 1");
        if num_field chunk "ms" <= 0.0 then
          failwith (tag ^ ": \"ms\" must be positive");
        let speedup = num_field chunk "speedup" in
        if speedup <= 0.0 then failwith (tag ^ ": \"speedup\" must be positive");
        (* Determinism is unconditional; throughput only when the host has
           the cores to run the pool in parallel at all. *)
        if not (bool_field chunk "bit_identical") then
          failwith (tag ^ ": parallel result differs from sequential");
        if domains <= host_cores && speedup < 1.0 then
          failwith
            (Printf.sprintf "%s: speedup %.3f < 1.0 on a %d-core host" tag
               speedup host_cores);
        name)
      chunks
  in
  List.iter
    (fun c ->
      if not (List.mem c seen) then
        failwith (Printf.sprintf "circuit %S missing from results" c))
    circuits;
  (* the embedded telemetry summary: every expected counter present, and
     the pool / characterization paths actually fired during the run *)
  let metric key = int_of_float (num_field s key) in
  List.iter (fun name -> ignore (metric name)) metric_names;
  if metric "pool.regions" < 1 then
    failwith "metrics: \"pool.regions\" must be >= 1 (pooled runs recorded)";
  if metric "pool.items" < 1 then
    failwith "metrics: \"pool.items\" must be >= 1";
  if metric "dc.solves" < 1 then
    failwith "metrics: \"dc.solves\" must be >= 1 (characterization ran)";
  Printf.printf "%s OK (%d rows)\n" path (List.length seen)

let () =
  let out = ref "BENCH_parallel.json" in
  let samples = ref 160 in
  let seed = ref 1 in
  let max_domains = ref 8 in
  let check_path = ref "" in
  Arg.parse
    [
      ("-o", Arg.Set_string out, "FILE output path (default BENCH_parallel.json)");
      ("-samples", Arg.Set_int samples, "N random vectors per MC run (default 160)");
      ("-seed", Arg.Set_int seed, "N PRNG seed (default 1)");
      ("-domains", Arg.Set_int max_domains,
       "N largest pool size to measure, of 2/4/8 (default 8)");
      ("-check", Arg.Set_string check_path, "FILE validate an existing JSON file and exit");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "domain-parallel estimation benchmark";
  if !check_path <> "" then
    match check !check_path with
    | () -> ()
    | exception Failure m ->
      Printf.eprintf "%s: INVALID: %s\n" !check_path m;
      exit 1
  else begin
    let host_cores = Domain.recommended_domain_count () in
    (* metrics ride along in the artifact; recording never changes results
       (the bit_identical rows double as proof) *)
    Telemetry.set_enabled true;
    let rows =
      List.concat_map
        (run_circuit ~samples:!samples ~seed:!seed ~max_domains:!max_domains)
        circuits
    in
    let oc = open_out !out in
    emit oc ~samples:!samples ~seed:!seed ~host_cores rows;
    close_out oc;
    List.iter
      (fun r ->
        Printf.printf
          "%-8s %4d gates  %d domain%s  %8.1f ms  speedup %5.2fx  identical %b\n"
          r.name r.gates r.domains (if r.domains = 1 then " " else "s")
          r.ms r.speedup r.bit_identical)
      rows
  end
