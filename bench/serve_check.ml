(* serve_check: end-to-end gate for the serve subsystem.

   Starts an in-process daemon on a temp socket, replays a deterministic
   golden edit script through the wire, and fails unless:

   1. every queried total is bit-identical to a direct Incremental session
      replaying the same script (including across checkpoint/rollback);
   2. two concurrent clients sharing one warm session, editing disjoint
      gate sets, land in a refreshed state bit-identical to one sequential
      direct session with the same final state;
   3. a warm re-open of the already-live session is at least 10x faster
      than the cold open was;
   4. the metrics reply carries non-empty open/apply/query latency
      histograms. *)

module Params = Leakage_device.Params
module Physics = Leakage_device.Physics
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Incremental = Leakage_incremental.Incremental
module Edit = Leakage_incremental.Edit
module Suite = Leakage_benchmarks.Suite
module Telemetry = Leakage_telemetry.Telemetry
module Protocol = Leakage_server.Protocol
module Server = Leakage_server.Server
module Client = Leakage_server.Client

let circuit = "s838"

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if cond then Printf.printf "ok: %s\n%!" msg
      else begin
        Printf.eprintf "serve_check: FAIL %s\n%!" msg;
        exit 1
      end)
    fmt

let eq_components (a : Report.components) (b : Report.components) =
  Float.equal a.Report.isub b.Report.isub
  && Float.equal a.Report.igate b.Report.igate
  && Float.equal a.Report.ibtbt b.Report.ibtbt

(* ------------------------------------------------- golden edit script *)

(* Deterministic, data-dependent script: resizes and input flips spread by
   fixed strides, plus arity-preserving retypes on 2-input gates. *)
let golden_batches nl =
  let gates = Netlist.gates nl in
  let n = Array.length gates in
  let n_in = Array.length (Netlist.inputs nl) in
  List.init 8 (fun b ->
      List.init 4 (fun k ->
          let pick = (b * 37 + k * 13 + 5) mod n in
          match k with
          | 0 -> Protocol.Resize (pick, 1.0 +. (float_of_int ((b + k) mod 7) /. 4.0))
          | 1 -> Protocol.Set_input ((b * 11 + 3) mod n_in, (b + k) mod 2 = 0)
          | _ ->
            (* retype only where we can name a same-arity cell *)
            let rec arity2 i =
              if Gate.arity gates.(i).Netlist.kind = 2 then i
              else arity2 ((i + 1) mod n)
            in
            let g = arity2 pick in
            Protocol.Retype (g, if (b + k) mod 2 = 0 then "nand2" else "nor2")))

let () =
  Telemetry.set_enabled true;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "leak-serve-check-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  let sock = Filename.concat dir "leak.sock" in
  let server =
    Server.create ~executors:2 ~jobs:2 ~quota:8 ~max_sessions:4
      ~state_dir:(Filename.concat dir "state") ~socket:sock ()
  in
  let th = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop server;
      Thread.join th;
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
  @@ fun () ->
  let nl = (Suite.find circuit).Suite.build () in
  let pattern = String.make (Array.length (Netlist.inputs nl)) '0' in

  (* ---- 1. golden replay against a direct session ---- *)
  let c = Client.connect_unix sock in
  let t0 = Unix.gettimeofday () in
  let o =
    Client.open_session c ~circuit:(Protocol.Builtin circuit) ~pattern ()
  in
  let cold_s = Unix.gettimeofday () -. t0 in
  check (o.Client.status = Protocol.Cold) "first open is cold (%.1f ms)"
    (cold_s *. 1e3);
  let direct =
    Incremental.create
      (Library.create ~device:Params.d25
         ~temp:(Physics.celsius_to_kelvin 25.0) ())
      nl
      (Logic.vector_of_string pattern)
  in
  let batches = golden_batches nl in
  let mid_ck = ref None in
  List.iteri
    (fun i batch ->
      ignore (Client.apply_batch c ~session:o.Client.session batch);
      Incremental.apply_batch direct (List.map Protocol.edit_to_incremental batch);
      if i = 3 then
        mid_ck :=
          Some
            ( Client.checkpoint c ~session:o.Client.session,
              Incremental.checkpoint direct );
      let loaded, baseline = Client.query c ~session:o.Client.session () in
      if
        not
          (eq_components loaded (Incremental.totals direct)
          && eq_components baseline (Incremental.baseline_totals direct))
      then begin
        Printf.eprintf "serve_check: FAIL batch %d diverged from direct session\n" i;
        exit 1
      end)
    batches;
  check true "%d golden batches bit-identical to the direct session"
    (List.length batches);
  (match !mid_ck with
   | None -> assert false
   | Some (wire_ck, direct_ck) ->
     Client.rollback c ~session:o.Client.session ~checkpoint:wire_ck;
     Incremental.rollback direct direct_ck;
     let loaded, _ = Client.query c ~session:o.Client.session ~refresh:true () in
     Incremental.refresh direct;
     check
       (eq_components loaded (Incremental.totals direct))
       "rollback to mid-script checkpoint bit-identical");

  (* ---- 2. two concurrent clients on one warm session ---- *)
  let gates = Netlist.gates nl in
  let n = Array.length gates in
  let sizes who = List.init 24 (fun k -> ((who + 2 * k * 17) mod n, 1.0 +. (float_of_int ((who + k) mod 5) /. 8.0))) in
  (* the two gate sets are disjoint: evens for client A, odds for client B *)
  let edits_a = List.map (fun (g, f) -> (g - (g mod 2), f)) (sizes 0) in
  let edits_b = List.map (fun (g, f) -> (g - (g mod 2) + 1, f)) (sizes 1) in
  let worker edits () =
    let cw = Client.connect_unix sock in
    Fun.protect ~finally:(fun () -> Client.close cw) @@ fun () ->
    let ow = Client.open_session cw ~circuit:(Protocol.Builtin circuit) () in
    assert (ow.Client.status = Protocol.Warm);
    List.iter
      (fun (g, f) ->
        ignore
          (Client.apply_batch cw ~session:ow.Client.session
             [ Protocol.Resize (g, f) ]))
      edits
  in
  let ta = Thread.create (worker edits_a) () in
  let tb = Thread.create (worker edits_b) () in
  Thread.join ta;
  Thread.join tb;
  (* disjoint resizes commute state-wise, and a refreshed query is a
     function of state alone — so any interleaving must equal one
     sequential direct replay *)
  Incremental.apply_batch direct
    (List.map (fun (g, f) -> Edit.Resize (g, f)) (edits_a @ edits_b));
  Incremental.refresh direct;
  let loaded, _ = Client.query c ~session:o.Client.session ~refresh:true () in
  check
    (eq_components loaded (Incremental.totals direct))
    "two concurrent clients landed bit-identical to a sequential session";

  (* ---- 3. warm re-open speedup ---- *)
  let c2 = Client.connect_unix sock in
  let t0 = Unix.gettimeofday () in
  let o2 = Client.open_session c2 ~circuit:(Protocol.Builtin circuit) () in
  let warm_s = Unix.gettimeofday () -. t0 in
  Client.close c2;
  check (o2.Client.status = Protocol.Warm) "re-open attaches warm";
  check (o2.Client.session = o.Client.session) "same session id";
  check
    (cold_s >= 10.0 *. warm_s)
    "warm re-open %.2f ms is >= 10x faster than cold %.1f ms" (warm_s *. 1e3)
    (cold_s *. 1e3);

  (* ---- 4. latency histograms in the metrics reply ---- *)
  let json = Client.metrics c in
  let histogram_count name =
    (* crude but sufficient scan: find `"name": {"count": N` *)
    let needle = Printf.sprintf "\"%s\": {\"count\": " name in
    let nl_ = String.length needle and hl = String.length json in
    let rec scan i =
      if i + nl_ > hl then None
      else if String.sub json i nl_ = needle then begin
        let j = ref (i + nl_) in
        let v = ref 0 in
        while !j < hl && json.[!j] >= '0' && json.[!j] <= '9' do
          v := (10 * !v) + Char.code json.[!j] - Char.code '0';
          incr j
        done;
        Some !v
      end
      else scan (i + 1)
    in
    scan 0
  in
  List.iter
    (fun h ->
      match histogram_count h with
      | Some count when count > 0 ->
        check true "histogram %s has %d observations" h count
      | other ->
        check false "histogram %s is %s" h
          (match other with Some _ -> "empty" | None -> "missing"))
    [ "serve.open_us"; "serve.apply_us"; "serve.query_us" ];

  Client.close_session c ~session:o.Client.session;
  Client.close c;
  Printf.printf "serve_check: all checks passed\n%!"
