(* Benchmark harness entry point.

   `dune exec bench/main.exe` reproduces every figure/table of the paper's
   evaluation (see bench/figures.ml) and finishes with bechamel
   micro-benchmarks of the core operations. Pass figure names to run a
   subset, e.g. `dune exec bench/main.exe -- fig5 fig12a speed`.
   `-j N` runs the pool-aware figures (fig10/fig11, dualvth, probabilistic,
   vectors, selfcheck) on an N-domain pool; the figure data is bit-identical
   either way (checked by the `selfcheck` figure).
   Set LEAKAGE_BENCH_FULL=1 for paper-scale vector/sample counts. *)

open Bechamel
open Toolkit

module Params = Leakage_device.Params
module Logic = Leakage_circuit.Logic
module Simulate = Leakage_circuit.Simulate
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Characterize = Leakage_core.Characterize
module Suite = Leakage_benchmarks.Suite
module Rng = Leakage_numeric.Rng

let micro_benchmarks () =
  Format.printf "@.=== bechamel micro-benchmarks ===@.";
  let device = Params.d25 in
  let temp = 300.0 in
  let nl = (Suite.find "s838").Suite.build () in
  let rng = Rng.create 77 in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  let lib = Library.create ~device ~temp () in
  (* warm the characterization cache so the estimator test measures the
     steady-state per-vector cost, as in the paper's runtime comparison *)
  ignore (Estimator.estimate lib nl pattern);
  let inv_tb = Leakage_core.Testbench.make Leakage_circuit.Gate.Inv [| Logic.Zero |] in
  let tests =
    [
      Test.make ~name:"logic-sim s838"
        (Staged.stage (fun () -> ignore (Simulate.run nl pattern)));
      Test.make ~name:"estimator s838 (fig13)"
        (Staged.stage (fun () -> ignore (Estimator.estimate lib nl pattern)));
      Test.make ~name:"full DC solve s838"
        (Staged.stage (fun () ->
             ignore (Report.analyze ~device ~temp nl pattern)));
      Test.make ~name:"DC solve single inverter"
        (Staged.stage (fun () ->
             ignore (Leakage_core.Testbench.solve ~device ~temp inv_tb)));
      Test.make ~name:"characterize NAND2 vector 01"
        (Staged.stage (fun () ->
             ignore
               (Characterize.characterize
                  ~grid:{ Characterize.max_current = 3.0e-6; points = 5 }
                  ~device ~temp (Leakage_circuit.Gate.Nand 2)
                  (Logic.vector_of_string "01"))));
    ]
  in
  let grouped = Test.make_grouped ~name:"leakage" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw_results = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let merged = Analyze.merge ols instances results in
  Format.printf "%-34s %16s@." "benchmark" "time/run";
  let rows = ref [] in
  Hashtbl.iter
    (fun _label tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> rows := (name, t) :: !rows
          | Some [] | None -> ())
        tbl)
    merged;
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Format.printf "%-34s %16s@." name pretty)
    (List.sort compare !rows)

let () =
  (* split a leading/embedded `-j N` (or `--jobs N`) off the figure names *)
  let jobs, names =
    let rec scan jobs acc = function
      | [] -> (jobs, List.rev acc)
      | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> scan (Some j) acc rest
        | _ -> failwith "-j expects a positive domain count")
      | name :: rest -> scan jobs (name :: acc) rest
    in
    scan None [] (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match names with
    | _ :: _ -> names
    | [] -> List.map fst Figures.all @ [ "speed" ]
  in
  let run_figures () =
    List.iter
      (fun name ->
        if name = "speed" || name = "bechamel" then micro_benchmarks ()
        else
          match List.assoc_opt name Figures.all with
          | Some f -> f ()
          | None ->
            Format.printf "unknown figure %S; available: %s speed@." name
              (String.concat " " (List.map fst Figures.all)))
      requested
  in
  match jobs with
  | None -> run_figures ()
  | Some j ->
    Leakage_parallel.Pool.with_pool ~jobs:j (fun p ->
        Figures.pool := Some p;
        run_figures ())
