(* Analytic variance propagation vs Monte-Carlo: the sigma-check gate.

   For every circuit of the golden corpus (the paper suite plus the 16k
   tapped chain) this benchmark computes mean and σ of each leakage
   component twice — in closed form (Sensitivity.estimate_totals) and by
   sampling (Statistical.run) — and requires the analytic numbers to sit
   within 3 standard errors of the Monte-Carlo on every series: loaded and
   baseline, per component and total, mean and σ. The standard error of σ
   is kurtosis-corrected (leakage distributions are heavily lognormal, so
   the naive σ/√2n would be far too tight a gate).

   It also measures the point of the closed form: the speedup over a
   10,000-sample MC (extrapolated linearly from the measured sample count —
   MC cost is linear in samples) must be ≥ 100×, and both engines must be
   bit-identical when fanned out over a domain pool.

     sigma_check.exe [-o FILE] [-samples N] [-seed N] [-domains N]
                     [-circuit NAME]...                        write JSON
     sigma_check.exe -check FILE               validate a JSON file *)

module Params = Leakage_device.Params
module Variation = Leakage_device.Variation
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report
module Characterize = Leakage_core.Characterize
module Library = Leakage_core.Library
module Sensitivity = Leakage_core.Sensitivity
module Statistical = Leakage_core.Statistical
module Stats = Leakage_numeric.Stats
module Rng = Leakage_numeric.Rng
module Suite = Leakage_benchmarks.Suite
module Trees = Leakage_benchmarks.Trees
module Pool = Leakage_parallel.Pool

let device = Params.d25
let temp = 300.0
let coarse_grid = { Characterize.max_current = 3.0e-6; points = 5 }
let sigmas = Variation.paper_sigmas
let reference_samples = 10_000
let z_gate = 3.0
let speedup_gate = 100.0

(* same corpus as test/golden_suite.json *)
let corpus () =
  Suite.all
  @ [ { Suite.label = "chain16k";
        build = (fun () -> Trees.chain ~stages:16384 ~tap_every:64 ()) } ]

type row = {
  name : string;
  gates : int;
  groups : int;
  flagged : bool;
  max_abs_z : float;
  analytic_ms : float;
  mc_ms : float;
  speedup_vs_10k : float;
  pool_identical : bool;
  loaded_mean : float;          (* analytic loaded total mean, A *)
  loaded_mean_mc : float;
  loaded_sigma : float;         (* analytic loaded total σ, A *)
  loaded_sigma_mc : float;
}

(* ------------------------------------------------------------ statistics *)

let central_moment4 values mean =
  let n = Array.length values in
  let s = ref 0.0 in
  Array.iter
    (fun v ->
      let d = v -. mean in
      s := !s +. (d *. d *. d *. d))
    values;
  !s /. float_of_int n

(* z-scores of (analytic mean, analytic σ) against a sample series.
   SE(mean) = s/√n; SE(s) ≈ √(m4 − s⁴)/(2·s·√n), the asymptotic standard
   error of the sample standard deviation without a normality assumption. *)
let z_scores ~mean ~sigma values =
  let n = float_of_int (Array.length values) in
  let m = Stats.mean values and s = Stats.std values in
  let se_mean = s /. sqrt n in
  let z_mean =
    if se_mean > 0.0 then (mean -. m) /. se_mean
    else if Float.abs (mean -. m) = 0.0 then 0.0
    else Float.infinity
  in
  let z_sigma =
    if s > 0.0 then begin
      let m4 = central_moment4 values m in
      let se_s = sqrt (Float.max 0.0 (m4 -. (s *. s *. s *. s))) /. (2.0 *. s *. sqrt n) in
      if se_s > 0.0 then (sigma -. s) /. se_s
      else if Float.abs (sigma -. s) = 0.0 then 0.0
      else Float.infinity
    end
    else if sigma = 0.0 then 0.0
    else Float.infinity
  in
  (z_mean, z_sigma)

let series (samples : Statistical.sample_totals array) ~base pick =
  Array.map
    (fun (s : Statistical.sample_totals) ->
      pick (if base then s.Statistical.no_loading else s.Statistical.with_loading))
    samples

let stat_of ~base (r : Sensitivity.result) =
  if base then r.Sensitivity.baseline else r.Sensitivity.loaded

(* max |z| over every (column, component, moment) series *)
let max_z (res : Sensitivity.result) (mc : Statistical.result) =
  let worst = ref 0.0 in
  List.iter
    (fun base ->
      let st = stat_of ~base res in
      List.iter
        (fun (pick, (cs : Sensitivity.component_stat)) ->
          let zm, zs =
            z_scores ~mean:cs.Sensitivity.mean ~sigma:cs.Sensitivity.sigma
              (series mc.Statistical.samples ~base pick)
          in
          worst := Float.max !worst (Float.max (Float.abs zm) (Float.abs zs)))
        [
          ((fun c -> c.Report.isub), st.Sensitivity.s_isub);
          ((fun c -> c.Report.igate), st.Sensitivity.s_igate);
          ((fun c -> c.Report.ibtbt), st.Sensitivity.s_ibtbt);
          (Report.total, st.Sensitivity.s_total);
        ])
    [ false; true ];
  !worst

(* ------------------------------------------------------------------ run *)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e3)

let run_circuit ~samples ~domains lib crng (entry : Suite.entry) =
  let nl = entry.Suite.build () in
  let pattern = Logic.random_vector crng (Array.length (Netlist.inputs nl)) in
  let mc_seed = 1 + Rng.int crng 1_000_000 in
  (* untimed warm-up: characterization entries + lazy netlist caches *)
  ignore
    (Sensitivity.estimate_totals ~fallback_samples:0 ~sigmas lib nl pattern);
  let (_, _, res), analytic_ms =
    timed (fun () ->
        Sensitivity.estimate_totals ~fallback_samples:0 ~sigmas lib nl pattern)
  in
  let mc, mc_ms =
    timed (fun () ->
        Statistical.run ~n_samples:samples ~seed:mc_seed ~sigmas lib nl pattern)
  in
  (* bit-identity across pool sizes: the closed form, and the sampler *)
  let pool_identical =
    List.for_all
      (fun jobs ->
        Pool.with_pool ~jobs (fun pool ->
            let _, _, res_p =
              Sensitivity.estimate_totals ~pool ~fallback_samples:0 ~sigmas lib
                nl pattern
            in
            let mc_p =
              Statistical.run ~pool
                ~n_samples:(Stdlib.min samples 64)
                ~seed:mc_seed ~sigmas lib nl pattern
            in
            let mc_s =
              Statistical.run
                ~n_samples:(Stdlib.min samples 64)
                ~seed:mc_seed ~sigmas lib nl pattern
            in
            res_p = res && mc_p.Statistical.samples = mc_s.Statistical.samples))
      [ 1; Stdlib.max 1 domains ]
  in
  let speedup =
    mc_ms
    *. (float_of_int reference_samples /. float_of_int samples)
    /. Float.max 1e-6 analytic_ms
  in
  {
    name = entry.Suite.label;
    gates = Netlist.gate_count nl;
    groups = res.Sensitivity.groups;
    flagged = Sensitivity.flagged res;
    max_abs_z = max_z res mc;
    analytic_ms;
    mc_ms;
    speedup_vs_10k = speedup;
    pool_identical;
    loaded_mean = res.Sensitivity.loaded.Sensitivity.s_total.Sensitivity.mean;
    loaded_mean_mc = Stats.mean mc.Statistical.total_with_loading;
    loaded_sigma = res.Sensitivity.loaded.Sensitivity.s_total.Sensitivity.sigma;
    loaded_sigma_mc = Stats.std mc.Statistical.total_with_loading;
  }

(* ------------------------------------------------------------- JSON emit *)

let emit oc ~samples ~seed ~domains rows =
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"sigma-check\",\n";
  p "  \"samples\": %d,\n" samples;
  p "  \"seed\": %d,\n" seed;
  p "  \"domains\": %d,\n" domains;
  p "  \"z_gate\": %.17g,\n" z_gate;
  p "  \"speedup_gate\": %.17g,\n" speedup_gate;
  p "  \"reference_samples\": %d,\n" reference_samples;
  (* bit-identity contract constants; -check rejects a stale artifact *)
  p "  \"sample_chunk\": %d,\n" Statistical.sample_chunk;
  p "  \"sigma_l\": %.17g,\n" sigmas.Variation.sigma_l;
  p "  \"sigma_tox\": %.17g,\n" sigmas.Variation.sigma_tox;
  p "  \"sigma_vdd\": %.17g,\n" sigmas.Variation.sigma_vdd;
  p "  \"sigma_vth_inter\": %.17g,\n" sigmas.Variation.sigma_vth_inter;
  p "  \"sigma_vth_intra\": %.17g,\n" sigmas.Variation.sigma_vth_intra;
  p "  \"circuits\": [\n";
  List.iteri
    (fun i r ->
      p "    {\n";
      p "      \"name\": \"%s\",\n" r.name;
      p "      \"gates\": %d,\n" r.gates;
      p "      \"groups\": %d,\n" r.groups;
      p "      \"flagged\": %b,\n" r.flagged;
      p "      \"max_abs_z\": %.4f,\n" r.max_abs_z;
      p "      \"analytic_ms\": %.3f,\n" r.analytic_ms;
      p "      \"mc_ms\": %.3f,\n" r.mc_ms;
      p "      \"speedup_vs_10k\": %.1f,\n" r.speedup_vs_10k;
      p "      \"pool_identical\": %b,\n" r.pool_identical;
      p "      \"loaded_mean\": %.17g,\n" r.loaded_mean;
      p "      \"loaded_mean_mc\": %.17g,\n" r.loaded_mean_mc;
      p "      \"loaded_sigma\": %.17g,\n" r.loaded_sigma;
      p "      \"loaded_sigma_mc\": %.17g\n" r.loaded_sigma_mc;
      p "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n"

(* ------------------------------------------------------ minimal JSON read *)

let find_key chunk key =
  let needle = "\"" ^ key ^ "\":" in
  let nl = String.length needle and cl = String.length chunk in
  let rec scan i =
    if i + nl > cl then None
    else if String.sub chunk i nl = needle then Some (i + nl)
    else scan (i + 1)
  in
  scan 0

let scalar_after chunk pos =
  let cl = String.length chunk in
  let rec skip i = if i < cl && chunk.[i] = ' ' then skip (i + 1) else i in
  let start = skip pos in
  let rec stop i =
    if i >= cl then i
    else match chunk.[i] with ',' | '}' | ']' | '\n' -> i | _ -> stop (i + 1)
  in
  String.trim (String.sub chunk start (stop start - start))

let num_field chunk key =
  match find_key chunk key with
  | None -> failwith (Printf.sprintf "missing numeric field %S" key)
  | Some pos -> (
    match float_of_string_opt (scalar_after chunk pos) with
    | Some f -> f
    | None -> failwith (Printf.sprintf "field %S is not a number" key))

let str_field chunk key =
  match find_key chunk key with
  | None -> failwith (Printf.sprintf "missing string field %S" key)
  | Some pos ->
    let s = scalar_after chunk pos in
    if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"'
    then String.sub s 1 (String.length s - 2)
    else failwith (Printf.sprintf "field %S is not a string" key)

let bool_field chunk key =
  match find_key chunk key with
  | None -> failwith (Printf.sprintf "missing boolean field %S" key)
  | Some pos -> (
    match scalar_after chunk pos with
    | "true" -> true
    | "false" -> false
    | other -> failwith (Printf.sprintf "field %S is not a boolean: %s" key other))

let circuit_chunks s =
  match find_key s "circuits" with
  | None -> failwith "missing \"circuits\" array"
  | Some pos ->
    let cl = String.length s in
    let chunks = ref [] in
    let depth = ref 0 and start = ref (-1) and i = ref pos in
    let stop = ref false in
    while (not !stop) && !i < cl do
      (match s.[!i] with
       | '{' ->
         if !depth = 0 then start := !i;
         incr depth
       | '}' ->
         decr depth;
         if !depth = 0 && !start >= 0 then
           chunks := String.sub s !start (!i - !start + 1) :: !chunks
       | ']' -> if !depth = 0 then stop := true
       | _ -> ());
      incr i
    done;
    List.rev !chunks

let check path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if str_field s "benchmark" <> "sigma-check" then
    failwith "benchmark field is not \"sigma-check\"";
  let samples = int_of_float (num_field s "samples") in
  if samples < 32 then failwith "samples must be >= 32";
  let sc = int_of_float (num_field s "sample_chunk") in
  if sc <> Statistical.sample_chunk then
    failwith
      (Printf.sprintf
         "\"sample_chunk\" is %d but this build uses %d — regenerate" sc
         Statistical.sample_chunk);
  (* the gates an artifact claims to have passed must be this build's *)
  if num_field s "z_gate" <> z_gate then failwith "z_gate mismatch — regenerate";
  if num_field s "speedup_gate" <> speedup_gate then
    failwith "speedup_gate mismatch — regenerate";
  let chunks = circuit_chunks s in
  let seen =
    List.map
      (fun chunk ->
        let name = str_field chunk "name" in
        if num_field chunk "gates" <= 0.0 then
          failwith (name ^ ": \"gates\" must be positive");
        if num_field chunk "groups" <= 0.0 then
          failwith (name ^ ": \"groups\" must be positive");
        if bool_field chunk "flagged" then
          failwith
            (name
             ^ ": linearization check flagged a component at the paper's \
                sigmas");
        let z = num_field chunk "max_abs_z" in
        if not (Float.is_finite z) || z > z_gate then
          failwith
            (Printf.sprintf
               "%s: analytic mean/σ beyond %g standard errors of the MC \
                (max |z| = %g)"
               name z_gate z);
        let sp = num_field chunk "speedup_vs_10k" in
        if sp < speedup_gate then
          failwith
            (Printf.sprintf "%s: speedup vs %d-sample MC only %.1fx (< %g)"
               name reference_samples sp speedup_gate);
        if not (bool_field chunk "pool_identical") then
          failwith (name ^ ": pooled results differ from sequential");
        name)
      chunks
  in
  List.iter
    (fun (e : Suite.entry) ->
      if not (List.mem e.Suite.label seen) then
        failwith (Printf.sprintf "circuit %S missing from results" e.Suite.label))
    (corpus ());
  Printf.printf "%s OK (%d circuits, %d MC samples)\n" path (List.length seen)
    samples

let () =
  let out = ref "BENCH_sigma.json" in
  let samples = ref reference_samples in
  let seed = ref 11 in
  let domains = ref 2 in
  let only = ref [] in
  let check_path = ref "" in
  Arg.parse
    [
      ("-o", Arg.Set_string out, "FILE output path (default BENCH_sigma.json)");
      ("-samples", Arg.Set_int samples,
       Printf.sprintf "N MC samples per circuit (default %d)" reference_samples);
      ("-seed", Arg.Set_int seed, "N PRNG seed (default 11)");
      ("-domains", Arg.Set_int domains,
       "N pool size for the bit-identity cross-check (default 2)");
      ("-circuit", Arg.String (fun c -> only := c :: !only),
       "NAME restrict to one corpus circuit (repeatable; default all)");
      ("-check", Arg.Set_string check_path,
       "FILE validate an existing JSON file and exit");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "analytic variance propagation vs Monte-Carlo";
  if !check_path <> "" then (
    match check !check_path with
    | () -> ()
    | exception Failure m ->
      Printf.eprintf "%s: INVALID: %s\n" !check_path m;
      exit 1)
  else begin
    if !samples < 32 then failwith "need -samples >= 32";
    let entries =
      match !only with
      | [] -> corpus ()
      | names ->
        List.filter
          (fun (e : Suite.entry) -> List.mem e.Suite.label names)
          (corpus ())
    in
    let lib = Library.create ~grid:coarse_grid ~device ~temp () in
    let rng = Rng.create !seed in
    (* per-circuit streams split up front, in corpus order, so restricting
       with -circuit never changes another circuit's pattern or MC seed *)
    let streams =
      List.map (fun (e : Suite.entry) -> (e.Suite.label, Rng.split rng)) (corpus ())
    in
    let rows =
      List.map
        (fun (e : Suite.entry) ->
          let crng = List.assoc e.Suite.label streams in
          let r = run_circuit ~samples:!samples ~domains:!domains lib crng e in
          Printf.printf
            "%-8s %6d gates  %3d groups  max|z| %5.2f  analytic %8.2f ms  \
             mc %8.1f ms  speedup(10k) %8.1fx  identical %b\n%!"
            r.name r.gates r.groups r.max_abs_z r.analytic_ms r.mc_ms
            r.speedup_vs_10k r.pool_identical;
          r)
        entries
    in
    let oc = open_out !out in
    emit oc ~samples:!samples ~seed:!seed ~domains:!domains rows;
    close_out oc
  end
