(* Reproduction of every table and figure in the paper's evaluation.

   Each [figN ()] prints the same series the paper plots, with a short note
   of what the paper reports next to what this implementation measures.
   Absolute currents differ from the paper (our devices are calibrated
   analytic stand-ins for their MEDICI/BSIM4 models); the shapes and
   orderings are the reproduction target (see EXPERIMENTS.md). *)

module Params = Leakage_device.Params
module Model = Leakage_device.Model
module Physics = Leakage_device.Physics
module Variation = Leakage_device.Variation
module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Netlist = Leakage_circuit.Netlist
module Simulate = Leakage_circuit.Simulate
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Loading = Leakage_core.Loading
module Monte_carlo = Leakage_core.Monte_carlo
module Characterize = Leakage_core.Characterize
module Testbench = Leakage_core.Testbench
module Vector_control = Leakage_incremental.Vector_control
module Dual_vth = Leakage_incremental.Dual_vth
module Suite = Leakage_benchmarks.Suite
module Rng = Leakage_numeric.Rng
module Stats = Leakage_numeric.Stats
module Interp = Leakage_numeric.Interp
module Pool = Leakage_parallel.Pool

let na = Physics.amps_to_nanoamps
let temp_room = 300.0

(* Worker pool shared by the pool-aware figures (fig10/fig11, dualvth,
   probabilistic, vectors). Set from main's -j flag. Every consumer keeps a
   fixed reduction tree, so the printed figure data is bit-identical with or
   without a pool — the `selfcheck` figure enforces exactly that. The timing
   figures (fig12, runtime) stay sequential on purpose: their columns measure
   single-stream solver/estimator cost and would only report scheduler
   contention under a pool. *)
let pool : Pool.t option ref = ref None

(* Paper-scale runs (100 vectors, 10k MC samples) are behind this switch;
   the default is sized to finish the whole suite in a couple of minutes. *)
let full_scale =
  match Sys.getenv_opt "LEAKAGE_BENCH_FULL" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let header title note =
  Format.printf "@.=== %s ===@." title;
  Format.printf "%s@." note

let sweep_currents = Interp.linspace 0.0 3.0e-6 13

(* ------------------------------------------------------------- Figure 4 *)

let fig4a () =
  header "Fig 4a: leakage components vs halo dose (off NMOS, D50)"
    "paper: subthreshold falls, BTBT rises, gate flat as halo dose grows";
  let d50 = Params.d50 in
  Format.printf "%10s %12s %12s %12s@." "halo[x]" "Isub[nA]" "Igate[nA]" "Ibtbt[nA]";
  Array.iter
    (fun halo ->
      let d = Params.with_halo d50 halo in
      let s, g, b =
        Model.off_state_leakage d Params.Nmos ~w:1.0 ~temp:temp_room
          ~vdd:d.Params.vdd
      in
      Format.printf "%10.2f %12.2f %12.2f %12.2f@." halo (na s) (na g) (na b))
    (Interp.linspace 0.6 1.6 11)

let fig4b () =
  header "Fig 4b: leakage components vs oxide thickness (off NMOS, D50)"
    "paper: gate tunneling explodes as Tox thins; thicker Tox worsens SCE \
     (more subthreshold); BTBT flat";
  let d50 = Params.d50 in
  Format.printf "%10s %12s %12s %12s@." "Tox[nm]" "Isub[nA]" "Igate[nA]" "Ibtbt[nA]";
  Array.iter
    (fun tox ->
      let d = Params.with_tox d50 tox in
      let s, g, b =
        Model.off_state_leakage d Params.Nmos ~w:1.0 ~temp:temp_room
          ~vdd:d.Params.vdd
      in
      Format.printf "%10.2f %12.2f %12.2f %12.2f@." tox (na s) (na g) (na b))
    (Interp.linspace 0.9 1.5 7)

let fig4c () =
  header "Fig 4c: leakage components vs temperature (off NMOS, D50)"
    "paper: gate+BTBT dominate at 300 K; subthreshold grows exponentially \
     and dominates when hot; gate flat; BTBT marginal";
  let d50 = Params.d50 in
  Format.printf "%10s %12s %12s %12s@." "T[K]" "Isub[nA]" "Igate[nA]" "Ibtbt[nA]";
  Array.iter
    (fun temp ->
      let s, g, b =
        Model.off_state_leakage d50 Params.Nmos ~w:1.0 ~temp
          ~vdd:d50.Params.vdd
      in
      Format.printf "%10.0f %12.2f %12.2f %12.2f@." temp (na s) (na g) (na b))
    (Interp.linspace 300.0 420.0 7)

(* ------------------------------------------------------------- Figure 5 *)

let print_ld_series pts =
  Format.printf "%12s %10s %10s %10s %10s@." "I_L[nA]" "LD_sub%" "LD_gate%"
    "LD_btbt%" "LD_tot%";
  Array.iter
    (fun (p : Loading.ld_point) ->
      Format.printf "%12.0f %+10.3f %+10.3f %+10.3f %+10.3f@."
        (na p.Loading.current) p.Loading.ld_sub p.Loading.ld_gate
        p.Loading.ld_btbt p.Loading.ld_total)
    pts

let fig5 () =
  let device = Params.d25 in
  header "Fig 5a/b: inverter loading effect, input '0' / output '1'"
    "paper: LD_IN raises subthreshold (strongest), trims gate, leaves BTBT; \
     LD_OUT reduces all three";
  Format.printf "-- (a) input loading:@.";
  print_ld_series
    (Loading.input_sweep ~device ~temp:temp_room ~currents:sweep_currents
       Gate.Inv [| Logic.Zero |]);
  Format.printf "-- (b) output loading:@.";
  print_ld_series
    (Loading.output_sweep ~device ~temp:temp_room ~currents:sweep_currents
       Gate.Inv [| Logic.Zero |]);
  header "Fig 5c/d: inverter loading effect, input '1' / output '0'"
    "paper: same signs, weaker LD_IN than input '0', stronger LD_OUT \
     (PMOS junction/Vds sensitivity)";
  Format.printf "-- (c) input loading:@.";
  print_ld_series
    (Loading.input_sweep ~device ~temp:temp_room ~currents:sweep_currents
       Gate.Inv [| Logic.One |]);
  Format.printf "-- (d) output loading:@.";
  print_ld_series
    (Loading.output_sweep ~device ~temp:temp_room ~currents:sweep_currents
       Gate.Inv [| Logic.One |])

(* ------------------------------------------------------------- Figure 6 *)

let fig6 () =
  let device = Params.d25 in
  header "Fig 6: LD_ALL(I_L-IN, I_L-OUT) surface for an inverter"
    "paper: LD_ALL grows with input loading, shrinks with output loading; \
     overall higher with input '0'";
  let grid = Interp.linspace 0.0 3.0e-6 5 in
  List.iter
    (fun input_value ->
      Format.printf "-- input '%c':@." (Logic.to_char input_value);
      Format.printf "%14s" "in\\out[nA]";
      Array.iter (fun o -> Format.printf "%10.0f" (na o)) grid;
      Format.printf "@.";
      Array.iter
        (fun i_in ->
          Format.printf "%14.0f" (na i_in);
          Array.iter
            (fun i_out ->
              let p =
                Loading.combined ~device ~temp:temp_room ~input_current:i_in
                  ~output_current:i_out Gate.Inv [| input_value |]
              in
              Format.printf "%+10.3f" p.Loading.ld_total)
            grid;
          Format.printf "@.")
        grid)
    [ Logic.Zero; Logic.One ]

(* ------------------------------------------------------------- Figure 7 *)

let fig7 () =
  let device = Params.d25 in
  header "Fig 7: NAND2 loading effect per input vector"
    "paper: input loading strongest when an NMOS is off ('01'/'10'), damped \
     by stacking at '00'; output loading strongest with output '0' ('11')";
  List.iter
    (fun vector ->
      let v = Logic.vector_of_string vector in
      let out = Gate.eval_logic (Gate.Nand 2) v in
      Format.printf "-- vector %s (output '%c'):@." vector (Logic.to_char out);
      let at pts = (pts : Loading.ld_point array).(Array.length pts - 1) in
      let pin0 =
        at (Loading.input_sweep ~device ~temp:temp_room ~pin:0
              ~currents:sweep_currents (Gate.Nand 2) v)
      in
      let pin1 =
        at (Loading.input_sweep ~device ~temp:temp_room ~pin:1
              ~currents:sweep_currents (Gate.Nand 2) v)
      in
      let out_sw =
        at (Loading.output_sweep ~device ~temp:temp_room
              ~currents:sweep_currents (Gate.Nand 2) v)
      in
      Format.printf
        "   LD_total at 3 uA: input-1 %+.3f%%  input-2 %+.3f%%  output %+.3f%%@."
        pin0.Loading.ld_total pin1.Loading.ld_total out_sw.Loading.ld_total)
    [ "00"; "01"; "10"; "11" ]

(* ------------------------------------------------------------- Figure 8 *)

let fig8 () =
  header "Fig 8: loading effect across device flavours (inverter)"
    "paper: D25-S (sub-dominated) reacts most to input loading; D25-JN \
     (junction-dominated) most to output loading; D25-G (gate-dominated) \
     least to both";
  let flavours =
    [ ("D25-S", Params.d25_s); ("D25-G", Params.d25_g); ("D25-JN", Params.d25_jn) ]
  in
  List.iter
    (fun (input_value, tag) ->
      Format.printf "-- input '%c' (%s):@." (Logic.to_char input_value) tag;
      Format.printf "%10s %16s %16s@." "device" "LD_IN@3uA[%]" "LD_OUT@3uA[%]";
      List.iter
        (fun (name, device) ->
          let last pts = (pts : Loading.ld_point array).(Array.length pts - 1) in
          let ld_in =
            (last (Loading.input_sweep ~device ~temp:temp_room
                     ~currents:sweep_currents Gate.Inv [| input_value |]))
              .Loading.ld_total
          in
          let ld_out =
            (last (Loading.output_sweep ~device ~temp:temp_room
                     ~currents:sweep_currents Gate.Inv [| input_value |]))
              .Loading.ld_total
          in
          Format.printf "%10s %+16.3f %+16.3f@." name ld_in ld_out)
        flavours)
    [ (Logic.Zero, "paper Fig 8a/b"); (Logic.One, "paper Fig 8c/d") ]

(* ------------------------------------------------------------- Figure 9 *)

let fig9 () =
  header "Fig 9: LD_ALL vs temperature (inverter, input '0', eq-3 normalization)"
    "paper: subthreshold LD grows strongly with T, gate/BTBT LD grow more \
     negative, total LD changes moderately (components move oppositely)";
  let device = Params.d25 in
  let pts =
    Loading.temperature_sweep ~device
      ~temps_celsius:(Interp.linspace 0.0 150.0 7)
      ~input_current:1.0e-6 ~output_current:1.0e-6 Gate.Inv [| Logic.Zero |]
  in
  Format.printf "%8s %10s %10s %10s %10s@." "T[C]" "LD_sub%" "LD_gate%"
    "LD_btbt%" "LD_tot%";
  Array.iter
    (fun (c, (p : Loading.ld_point)) ->
      Format.printf "%8.0f %+10.3f %+10.3f %+10.3f %+10.3f@." c p.Loading.ld_sub
        p.Loading.ld_gate p.Loading.ld_btbt p.Loading.ld_total)
    pts

(* ------------------------------------------------------------ Figure 10 *)

let mc_samples () = if full_scale then 10_000 else 2_000

let fig10 () =
  header "Fig 10: Monte-Carlo component distributions with/without loading"
    (Printf.sprintf
       "paper: 10,000 samples, 6+6 loading inverters; loading visibly shifts \
        the subthreshold distribution (running %d samples%s)"
       (mc_samples ())
       (if full_scale then "" else "; LEAKAGE_BENCH_FULL=1 for 10k"));
  let device = Params.d25 in
  let config =
    { Monte_carlo.paper_config with Monte_carlo.n_samples = mc_samples () }
  in
  let samples =
    Monte_carlo.run ?pool:!pool ~config ~device ~temp:temp_room
      ~sigmas:Variation.paper_sigmas ()
  in
  let show name pick =
    let loaded, unloaded = Monte_carlo.component_arrays samples ~pick in
    let sl = Stats.summarize loaded and su = Stats.summarize unloaded in
    Format.printf
      "%-14s no-load mean %9.1f std %9.1f | loaded mean %9.1f std %9.1f nA@."
      name (na su.Stats.mean) (na su.Stats.std) (na sl.Stats.mean)
      (na sl.Stats.std);
    (* compact shared-axis histogram pair *)
    let lo, hi =
      let l1, h1 = Stats.min_max loaded and l2, h2 = Stats.min_max unloaded in
      (Float.min l1 l2, Float.max h1 h2)
    in
    let hist a = Stats.histogram_in ~lo ~hi:(hi +. 1e-15) ~bins:10 a in
    let line tag h =
      Format.printf "  %-9s" tag;
      Array.iter (fun c -> Format.printf "%6d" c) (hist h).Stats.counts;
      Format.printf "@."
    in
    line "no-load" unloaded;
    line "loaded" loaded
  in
  show "subthreshold" (fun c -> c.Report.isub);
  show "gate" (fun c -> c.Report.igate);
  show "junction" (fun c -> c.Report.ibtbt);
  show "total" Report.total

(* ------------------------------------------------------------ Figure 11 *)

let fig11 () =
  header "Fig 11: loading shift of total-leakage mean and sigma vs sigma(Vth,inter)"
    "paper: both grow with inter-die spread; sigma grows faster than the mean";
  let device = Params.d25 in
  let config =
    { Monte_carlo.paper_config with
      Monte_carlo.n_samples = (if full_scale then 10_000 else 1_500) }
  in
  let shifts =
    Monte_carlo.spread_vs_sigma ?pool:!pool ~config ~device ~temp:temp_room
      ~base_sigmas:Variation.paper_sigmas
      ~sigma_vth_inter_values:[| 0.030; 0.040; 0.050 |] ()
  in
  Format.printf "%14s %16s %16s@." "sigmaVt[mV]" "mean shift[%]" "std shift[%]";
  Array.iter
    (fun (s : Monte_carlo.spread_shift) ->
      Format.printf "%14.0f %+16.3f %+16.3f@."
        (s.Monte_carlo.sigma_vth_inter *. 1000.0)
        s.Monte_carlo.mean_shift_percent s.Monte_carlo.std_shift_percent)
    shifts

(* ------------------------------------------------------------ Figure 12 *)

let vectors_for label =
  if full_scale then 100
  else
    match label with
    | "s13207" -> 3
    | "s9234" -> 5
    | "s5378" -> 10
    | _ -> 20

type fig12_row = {
  label : string;
  spice_total : float;        (* A, mean over vectors *)
  est_total : float;
  avg_shift : Report.components;   (* percent per component, mean *)
  avg_shift_total : float;
  max_shift : Report.components;   (* percent per component, max over vectors *)
  max_shift_total : float;
  t_spice : float;
  t_est : float;
}

let fig12_row lib device label =
  let nl = (Suite.find label).Suite.build () in
  let n = vectors_for label in
  let rng = Rng.create 0xF12 in
  let patterns = Simulate.random_patterns rng nl n in
  (* Warm the characterization cache over the whole vector set so the timing
     columns measure the steady-state per-vector cost, not one-off table
     building triggered by late-appearing (cell, state) pairs. *)
  List.iter (fun p -> ignore (Estimator.estimate lib nl p)) patterns;
  let zero = Report.zero in
  let sum_spice = ref zero and sum_est = ref zero in
  let sum_shift = ref zero and sum_shift_total = ref 0.0 in
  let max_shift = ref zero and max_shift_total = ref 0.0 in
  let t_spice = ref 0.0 and t_est = ref 0.0 in
  List.iter
    (fun pattern ->
      let t0 = Unix.gettimeofday () in
      let est = Estimator.estimate lib nl pattern in
      t_est := !t_est +. (Unix.gettimeofday () -. t0);
      let t0 = Unix.gettimeofday () in
      let spice, _, _ =
        Report.analyze ~device ~temp:temp_room nl pattern
      in
      t_spice := !t_spice +. (Unix.gettimeofday () -. t0);
      sum_spice := Report.add !sum_spice spice.Report.totals;
      sum_est := Report.add !sum_est est.Estimator.totals;
      let pct part whole = abs_float ((part -. whole) /. whole *. 100.0) in
      let base = est.Estimator.baseline_totals in
      let with_l = est.Estimator.totals in
      let shift = {
        Report.isub = pct with_l.Report.isub base.Report.isub;
        igate = pct with_l.Report.igate base.Report.igate;
        ibtbt = pct with_l.Report.ibtbt base.Report.ibtbt;
      } in
      let shift_total = pct (Report.total with_l) (Report.total base) in
      sum_shift := Report.add !sum_shift shift;
      sum_shift_total := !sum_shift_total +. shift_total;
      max_shift := {
        Report.isub = Float.max !max_shift.Report.isub shift.Report.isub;
        igate = Float.max !max_shift.Report.igate shift.Report.igate;
        ibtbt = Float.max !max_shift.Report.ibtbt shift.Report.ibtbt;
      };
      max_shift_total := Float.max !max_shift_total shift_total)
    patterns;
  let inv_n = 1.0 /. float_of_int n in
  {
    label;
    spice_total = Report.total !sum_spice *. inv_n;
    est_total = Report.total !sum_est *. inv_n;
    avg_shift = Report.scale inv_n !sum_shift;
    avg_shift_total = !sum_shift_total *. inv_n;
    max_shift = !max_shift;
    max_shift_total = !max_shift_total;
    t_spice = !t_spice;
    t_est = !t_est;
  }

let fig12_rows = ref None

let compute_fig12 () =
  match !fig12_rows with
  | Some rows -> rows
  | None ->
    let device = Params.d25 in
    let lib = Library.create ~device ~temp:temp_room () in
    let rows = List.map (fig12_row lib device) Suite.names in
    fig12_rows := Some rows;
    rows

let fig12a () =
  header "Fig 12a: estimated vs transistor-level ('SPICE') total leakage"
    (Printf.sprintf
       "paper: estimator matches SPICE closely on all 8 circuits (%s random \
        vectors per circuit)"
       (if full_scale then "100" else "3-20"));
  let rows = compute_fig12 () in
  Format.printf "%-10s %16s %16s %12s %10s@." "circuit" "SPICE[uA]" "est[uA]"
    "power[uW]" "err[%]";
  List.iter
    (fun r ->
      Format.printf "%-10s %16.2f %16.2f %12.2f %+10.3f@." r.label
        (r.spice_total *. 1e6) (r.est_total *. 1e6)
        (r.spice_total *. Params.d25.Params.vdd *. 1e6)
        ((r.est_total -. r.spice_total) /. r.spice_total *. 100.0))
    rows

let fig12b () =
  header "Fig 12b: average % leakage variation due to loading"
    "paper: subthreshold shifts most (~8%), then BTBT (~4.5%), then gate \
     (~3.6%); total ~5% (cancellation) — same ordering expected at our \
     smaller absolute loading";
  let rows = compute_fig12 () in
  Format.printf "%-10s %10s %10s %10s %10s@." "circuit" "sub[%]" "gate[%]"
    "btbt[%]" "total[%]";
  List.iter
    (fun r ->
      Format.printf "%-10s %10.3f %10.3f %10.3f %10.3f@." r.label
        r.avg_shift.Report.isub r.avg_shift.Report.igate
        r.avg_shift.Report.ibtbt r.avg_shift_total)
    rows

let fig12c () =
  header "Fig 12c: maximum % leakage variation over the vector set"
    "paper: maxima a few points above the averages, same component ordering";
  let rows = compute_fig12 () in
  Format.printf "%-10s %10s %10s %10s %10s@." "circuit" "sub[%]" "gate[%]"
    "btbt[%]" "total[%]";
  List.iter
    (fun r ->
      Format.printf "%-10s %10.3f %10.3f %10.3f %10.3f@." r.label
        r.max_shift.Report.isub r.max_shift.Report.igate
        r.max_shift.Report.ibtbt r.max_shift_total)
    rows

let runtime_table () =
  header "Runtime: estimator vs transistor-level solve (the ~1000x claim)"
    "paper: the estimator is ~1000x faster than SPICE; our reference solver \
     is itself much faster than SPICE, so the ratio below understates the \
     advantage over a real circuit simulator";
  let rows = compute_fig12 () in
  Format.printf "%-10s %14s %14s %12s@." "circuit" "solver[s]" "estimator[s]"
    "speedup[x]";
  List.iter
    (fun r ->
      Format.printf "%-10s %14.3f %14.4f %12.0f@." r.label r.t_spice r.t_est
        (r.t_spice /. Float.max 1e-9 r.t_est))
    rows

(* ------------------------------------------------------------ Ablations *)

let ablation_superposition () =
  header "Ablation: per-pin superposition (eq 5) vs exact joint loading"
    "DESIGN.md: the estimator sums per-pin 1-D tables; Fig 6's cross terms \
     are small, so the superposition error should sit well below 1%";
  let device = Params.d25 in
  let grid = Interp.linspace (-2.4e-6) 2.4e-6 5 in
  List.iter
    (fun input_value ->
      let v = [| input_value |] in
      let entry =
        Characterize.characterize ~device ~temp:temp_room Gate.Inv v
      in
      let tb = Testbench.make Gate.Inv v in
      let worst = ref 0.0 in
      Array.iter
        (fun i_in ->
          Array.iter
            (fun i_out ->
              let exact =
                Testbench.dut_components
                  (Testbench.solve
                     ~injections:[ (tb.Testbench.pin_nets.(0), i_in);
                                   (tb.Testbench.out_net, i_out) ]
                     ~device ~temp:temp_room tb)
              in
              let approx =
                Characterize.apply entry ~loading_in:[| i_in |]
                  ~loading_out:i_out
              in
              let err =
                abs_float
                  ((Report.total approx -. Report.total exact)
                   /. Report.total exact *. 100.0)
              in
              worst := Float.max !worst err)
            grid)
        grid;
      Format.printf "  input '%c': max superposition error %.4f%%@."
        (Logic.to_char input_value) !worst)
    [ Logic.Zero; Logic.One ]

let ablation_grid () =
  header "Ablation: characterization grid density vs estimator accuracy"
    "DESIGN.md: table resolution is a cost/accuracy knob; the response is \
     smooth so coarse grids should already be accurate";
  let device = Params.d25 in
  let nl = (Suite.find "s838").Suite.build () in
  let rng = Rng.create 99 in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  let spice, _, _ = Report.analyze ~device ~temp:temp_room nl pattern in
  let reference = Report.total spice.Report.totals in
  List.iter
    (fun points ->
      let lib =
        Library.create
          ~grid:{ Characterize.max_current = 3.0e-6; points }
          ~device ~temp:temp_room ()
      in
      let est = Estimator.estimate lib nl pattern in
      Format.printf "  %2d-point tables: error vs solver %+.4f%%@." points
        ((Report.total est.Estimator.totals -. reference) /. reference *. 100.0))
    [ 3; 5; 9; 21 ]

let ablation_one_level () =
  header "Ablation: propagation depth of the loading model"
    "paper §6: loading barely propagates beyond one level. Zero-level = the \
     traditional no-loading sum; pass N re-evaluates pin currents under the \
     previous pass's loading, adding one level of propagation each time";
  let device = Params.d25 in
  let lib = Library.create ~device ~temp:temp_room () in
  List.iter
    (fun label ->
      let nl = (Suite.find label).Suite.build () in
      let rng = Rng.create 5 in
      let pattern = List.hd (Simulate.random_patterns rng nl 1) in
      let spice, _, _ = Report.analyze ~device ~temp:temp_room nl pattern in
      let reference = Report.total spice.Report.totals in
      let err v = abs_float ((v -. reference) /. reference *. 100.0) in
      let est1 = Estimator.estimate lib nl pattern in
      let est2 = Estimator.estimate ~passes:2 lib nl pattern in
      let est3 = Estimator.estimate ~passes:3 lib nl pattern in
      Format.printf
        "  %-8s err: zero-level %6.3f%% | 1 pass %6.3f%% | 2 passes %6.3f%% | 3 passes %6.3f%%@."
        label
        (err (Report.total est1.Estimator.baseline_totals))
        (err (Report.total est1.Estimator.totals))
        (err (Report.total est2.Estimator.totals))
        (err (Report.total est3.Estimator.totals)))
    [ "s838"; "s1196"; "alu88"; "mult88" ]

(* ---------------------------------------------------- min-vector change *)

let vectors_experiment () =
  header "Input-vector control under loading (§6)"
    "paper: the minimum-leakage vector can change when loading is modeled";
  let device = Params.d25 in
  let lib = Library.create ~device ~temp:temp_room () in
  List.iter
    (fun label ->
      let nl = (Suite.find label).Suite.build () in
      let c =
        Vector_control.compare_objectives ?pool:!pool ~samples:64 ~seed:3 lib nl
      in
      Format.printf
        "  %-8s min(loading) %.1f uA | min(traditional) re-costed %.1f uA | changed: %b@."
        label
        (c.Vector_control.with_loading.Vector_control.total *. 1e6)
        (c.Vector_control.without_under_loading *. 1e6)
        c.Vector_control.changed)
    [ "alu88"; "s838" ]

let extension_statistical () =
  header "Extension: circuit-level statistical leakage (fast MC)"
    "beyond the paper: Figs 10/11 done for whole circuits at estimator speed      via characterized threshold log-sensitivities (validated against the      transistor-level MC in the test suite)";
  let device = Params.d25 in
  let lib = Library.create ~device ~temp:temp_room () in
  List.iter
    (fun label ->
      let nl = (Suite.find label).Suite.build () in
      let rng = Rng.create 31 in
      let pattern = List.hd (Simulate.random_patterns rng nl 1) in
      let n = if full_scale then 10_000 else 2_000 in
      let r =
        Leakage_core.Statistical.run ~n_samples:n ~seed:7
          ~sigmas:Variation.paper_sigmas lib nl pattern
      in
      let loaded, unloaded = Leakage_core.Statistical.summary r in
      Format.printf
        "  %-8s mean %8.1f uA (sigma %7.1f) | no-loading mean %8.1f (sigma %7.1f) | mean shift %+5.2f%% sigma shift %+5.2f%%@."
        label
        (loaded.Stats.mean *. 1e6) (loaded.Stats.std *. 1e6)
        (unloaded.Stats.mean *. 1e6) (unloaded.Stats.std *. 1e6)
        ((loaded.Stats.mean -. unloaded.Stats.mean) /. unloaded.Stats.mean *. 100.0)
        ((loaded.Stats.std -. unloaded.Stats.std) /. unloaded.Stats.std *. 100.0))
    [ "s838"; "s1423"; "alu88" ]

let extension_mtcmos () =
  header "Extension: MTCMOS power gating (transistor-level)"
    "beyond the paper: sleep-transistor standby analysis with the virtual      ground solved as a circuit unknown — the circuit-level form of the      stacking effect of [8]/[9]";
  let device = Params.d25 in
  List.iter
    (fun label ->
      let nl = (Suite.find label).Suite.build () in
      let rng = Rng.create 17 in
      let pattern = List.hd (Simulate.random_patterns rng nl 1) in
      let r = Leakage_core.Mtcmos.analyze ~device ~temp:temp_room nl pattern in
      Format.printf
        "  %-8s ungated %8.1f uA | active %8.1f uA (vgnd %5.1f mV, %+5.1f%%) | standby %8.1f uA (vgnd %5.0f mV, -%4.1f%%)@."
        label
        (Report.total r.Leakage_core.Mtcmos.ungated *. 1e6)
        (Report.total r.Leakage_core.Mtcmos.active.Leakage_core.Mtcmos.leakage *. 1e6)
        (r.Leakage_core.Mtcmos.active.Leakage_core.Mtcmos.virtual_ground *. 1e3)
        r.Leakage_core.Mtcmos.active_overhead_percent
        (Report.total r.Leakage_core.Mtcmos.standby.Leakage_core.Mtcmos.leakage *. 1e6)
        (r.Leakage_core.Mtcmos.standby.Leakage_core.Mtcmos.virtual_ground *. 1e3)
        r.Leakage_core.Mtcmos.standby_reduction_percent)
    [ "alu88"; "s838" ]

let extension_dualvth () =
  header "Extension: dual-Vth assignment (slack-based)"
    "beyond the paper: timing-noncritical gates moved to +80 mV threshold,      evaluated with per-gate libraries in the loading-aware estimator";
  let device = Params.d25 in
  let low_lib = Library.create ~device ~temp:temp_room () in
  let high_device = Leakage_incremental.Dual_vth.high_vth_device device in
  let high_lib =
    Library.create ~device:high_device ~temp:temp_room
      ~vdd:device.Params.vdd ()
  in
  List.iter
    (fun label ->
      let nl = (Suite.find label).Suite.build () in
      let rng = Rng.create 17 in
      let pattern = List.hd (Simulate.random_patterns rng nl 1) in
      let assignment =
        Leakage_incremental.Dual_vth.slack_assignment ~critical_margin:1 nl
      in
      let e =
        Dual_vth.evaluate ?pool:!pool ~low_lib ~high_lib assignment nl pattern
      in
      Format.printf
        "  %-8s %4d/%4d gates high-Vth -> leakage %8.1f -> %8.1f uA (-%.1f%%)@."
        label e.Leakage_incremental.Dual_vth.n_high (Netlist.gate_count nl)
        (Report.total e.Leakage_incremental.Dual_vth.baseline *. 1e6)
        (Report.total e.Leakage_incremental.Dual_vth.totals *. 1e6)
        e.Leakage_incremental.Dual_vth.reduction_percent)
    [ "alu88"; "s838"; "s1423" ]

let extension_thermal () =
  header "Extension: leakage-temperature self-consistency"
    "beyond the paper: junction temperature with leakage-power feedback;      the knee toward thermal runaway is the sustainable packaging limit";
  let device = Params.d25 in
  let nl = (Suite.find "alu88").Suite.build () in
  let rng = Rng.create 17 in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  Array.iter
    (fun (r_theta, outcome) ->
      match outcome with
      | Leakage_core.Thermal.Converged op ->
        Format.printf "  R = %8.0f K/W -> T = %6.2f C, leakage %8.2f uW@."
          r_theta
          (Physics.kelvin_to_celsius op.Leakage_core.Thermal.temperature)
          (op.Leakage_core.Thermal.leakage_power *. 1e6)
      | Leakage_core.Thermal.Runaway { last_temp; _ } ->
        Format.printf "  R = %8.0f K/W -> THERMAL RUNAWAY (passed %.0f C)@."
          r_theta
          (Physics.kelvin_to_celsius last_temp))
    (Leakage_core.Thermal.temperature_profile ~device
       ~r_theta_values:[| 100.0; 10_000.0; 200_000.0 |] nl pattern)

let extension_probabilistic () =
  header "Extension: closed-form average leakage from signal probabilities"
    "beyond the paper: the 100-random-vector averages computed analytically      (independence assumption; exact on tree circuits)";
  let device = Params.d25 in
  let lib = Library.create ~device ~temp:temp_room () in
  List.iter
    (fun label ->
      let nl = (Suite.find label).Suite.build () in
      let analytic = Leakage_core.Probabilistic.expected_leakage lib nl in
      let rng = Rng.create 17 in
      let n = if full_scale then 100 else 15 in
      let empirical, _ =
        Estimator.average_over_vectors ?pool:!pool lib nl
          (Simulate.random_patterns rng nl n)
      in
      Format.printf
        "  %-8s analytic %8.1f uA vs %d-vector average %8.1f uA (%+.2f%%)@."
        label
        (Report.total analytic.Leakage_core.Probabilistic.totals *. 1e6)
        n
        (Report.total empirical *. 1e6)
        ((Report.total analytic.Leakage_core.Probabilistic.totals
          -. Report.total empirical)
         /. Report.total empirical *. 100.0))
    [ "alu88"; "s838" ]

(* ------------------------------------------------------------ self-check *)

(* Recompute a representative slice of every pool-aware dataset sequentially
   and on 2- and 3-domain pools, requiring bit identity (structural compare,
   so even a NaN would have to match bit patterns through its payload class).
   This is what lets `main.exe -j N` claim the same figures as a sequential
   run. Sample counts are deliberately small: identity either holds at every
   size or the reduction tree is broken, and the tree is fixed by chunk
   constants, not by N. *)
let selfcheck () =
  header "Self-check: pooled figure data vs sequential"
    "every ?pool consumer folds a schedule-independent reduction tree, so \
     the domain count must not change a single bit of figure data";
  let device = Params.d25 in
  let lib = Library.create ~device ~temp:temp_room () in
  let saved = !pool in
  let compute name f =
    pool := None;
    let seq = f () in
    List.iter
      (fun jobs ->
        let par = Pool.with_pool ~jobs (fun p -> pool := Some p; f ()) in
        pool := saved;
        if Stdlib.compare par seq <> 0 then
          failwith (Printf.sprintf "selfcheck: %S differs at %d domains" name jobs))
      [ 2; 3 ];
    pool := saved;
    Format.printf "  %-28s bit-identical at 1/2/3 domains@." name
  in
  let mc_config =
    { Monte_carlo.paper_config with Monte_carlo.n_samples = 64 }
  in
  compute "fig10 MC samples" (fun () ->
      Monte_carlo.run ?pool:!pool ~config:mc_config ~device ~temp:temp_room
        ~sigmas:Variation.paper_sigmas ());
  compute "fig11 spread-vs-sigma" (fun () ->
      Monte_carlo.spread_vs_sigma ?pool:!pool ~config:mc_config ~device
        ~temp:temp_room ~base_sigmas:Variation.paper_sigmas
        ~sigma_vth_inter_values:[| 0.030; 0.050 |] ());
  compute "vectors objectives (s838)" (fun () ->
      Vector_control.compare_objectives ?pool:!pool ~samples:16 ~seed:3 lib
        ((Suite.find "s838").Suite.build ()));
  compute "dualvth evaluate (s838)" (fun () ->
      let nl = (Suite.find "s838").Suite.build () in
      let high_device = Dual_vth.high_vth_device device in
      let high_lib =
        Library.create ~device:high_device ~temp:temp_room
          ~vdd:device.Params.vdd ()
      in
      let assignment = Dual_vth.slack_assignment ~critical_margin:1 nl in
      let pattern =
        List.hd (Simulate.random_patterns (Rng.create 17) nl 1)
      in
      Dual_vth.evaluate ?pool:!pool ~low_lib:lib ~high_lib assignment nl
        pattern);
  compute "probabilistic average (s838)" (fun () ->
      let nl = (Suite.find "s838").Suite.build () in
      Estimator.average_over_vectors ?pool:!pool lib nl
        (Simulate.random_patterns (Rng.create 17) nl 24))

let all : (string * (unit -> unit)) list =
  [ ("fig4a", fig4a); ("fig4b", fig4b); ("fig4c", fig4c); ("fig5", fig5);
    ("fig6", fig6); ("fig7", fig7); ("fig8", fig8); ("fig9", fig9);
    ("fig10", fig10); ("fig11", fig11); ("fig12a", fig12a);
    ("fig12b", fig12b); ("fig12c", fig12c); ("runtime", runtime_table);
    ("statistical", extension_statistical);
    ("mtcmos", extension_mtcmos);
    ("dualvth", extension_dualvth);
    ("thermal", extension_thermal);
    ("probabilistic", extension_probabilistic);
    ("ablation-superposition", ablation_superposition);
    ("ablation-grid", ablation_grid); ("ablation-onelevel", ablation_one_level);
    ("vectors", vectors_experiment); ("selfcheck", selfcheck) ]
