(* Incremental-vs-full re-estimation benchmark.

   Applies a stream of random single-gate resize edits to Mult8 and Alu8
   through an Incremental session and compares the per-edit cost against a
   full Fig-13 estimate of the same state, emitting the result as
   BENCH_incremental.json. A warm-up pass runs the same edit stream first so
   first-touch cell characterizations (shared library cache) are excluded
   from both sides of the comparison.

   A second scenario replays one large grouped batch (apply_batch) on
   mult88: sequentially and on 1/2/4/8-domain pools, checking that every
   pooled run leaves the exact same session state (bit-identical floats) and
   recording the cone-disjoint group count the batch exposes. Speedup is
   enforced by -check only for pool sizes within the recorded host_cores,
   like BENCH_parallel.json.

   A third scenario exercises value-aware cone pruning on a deep tapped
   chain (gateway NAND taps held at the controlling 0): a batch of
   mid-segment retypes whose structural cones all run to the end of the
   chain — one merged group — must partition into one group per edited
   segment once settled values prune the walk, with the per-batch results
   staying bit-identical to the unpruned path. The pruned and structural
   cone-size histogram deltas ride along in the artifact.

     incremental.exe [-o FILE] [-edits N] [-batch-edits N] [-domains N]
                     [-seed N]                       write the JSON
     incremental.exe -check FILE                     validate a JSON file *)

module Params = Leakage_device.Params
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Simulate = Leakage_circuit.Simulate
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Incremental = Leakage_incremental.Incremental
module Edit = Leakage_incremental.Edit
module Cone = Leakage_incremental.Cone
module Vector_mc = Leakage_incremental.Vector_mc
module Suite = Leakage_benchmarks.Suite
module Trees = Leakage_benchmarks.Trees
module Rng = Leakage_numeric.Rng
module Pool = Leakage_parallel.Pool
module Telemetry = Leakage_telemetry.Telemetry

let circuits = [ "mult88"; "alu88" ]
let batch_circuit = "mult88"
let batch_pool_sizes = [ 1; 2; 4; 8 ]

type row = {
  name : string;
  gates : int;
  full_us : float;
  incr_us : float;
  speedup : float;
  rel_error : float;
  logic_evals_per_edit : float;
  lookups_per_edit : float;
  refreshes : int;
}

let run_circuit ~edits ~seed name =
  let nl = (Suite.find name).Suite.build () in
  let lib = Library.create ~device:Params.d25 ~temp:300.0 () in
  let rng = Rng.create seed in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  let stream = Array.init edits (fun _ -> Edit.random_resize rng nl) in
  (* warm-up: populate the characterization cache along the edit stream *)
  let warm = Incremental.create lib nl pattern in
  Array.iter (Incremental.apply warm) stream;
  (* timed incremental pass on a fresh session *)
  let session = Incremental.create lib nl pattern in
  let t0 = Unix.gettimeofday () in
  Array.iter (Incremental.apply session) stream;
  let incr_us = (Unix.gettimeofday () -. t0) /. float_of_int edits *. 1e6 in
  (* timed full estimates of the same final state *)
  let nl' = Incremental.current_netlist session in
  let p' = Incremental.pattern session in
  let reps = Stdlib.min edits 50 in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Estimator.estimate lib nl' p')
  done;
  let full_us = (Unix.gettimeofday () -. t1) /. float_of_int reps *. 1e6 in
  let fresh = Estimator.estimate lib nl' p' in
  let rel_error =
    let a = Report.total (Incremental.totals session)
    and b = Report.total fresh.Estimator.totals in
    Float.abs (a -. b) /. Float.abs b
  in
  let st = Incremental.stats session in
  {
    name;
    gates = Netlist.gate_count nl;
    full_us;
    incr_us;
    speedup = full_us /. incr_us;
    rel_error;
    logic_evals_per_edit =
      float_of_int st.Incremental.logic_evals /. float_of_int edits;
    lookups_per_edit =
      float_of_int st.Incremental.leakage_lookups /. float_of_int edits;
    refreshes = st.Incremental.refreshes;
  }

(* ------------------------------------------------------- grouped batches *)

type batch_row = {
  b_domains : int;  (* 0 = plain sequential apply_batch, no pool at all *)
  b_groups : int;
  b_us : float;     (* mean apply_batch wall time, µs *)
  b_speedup : float;
  b_identical : bool;
}

(* Exact observable state after the batch; pooled runs must reproduce the
   sequential floats bit for bit. *)
let batch_fingerprint s =
  ( Incremental.totals s,
    Incremental.baseline_totals s,
    Incremental.net_injection s,
    Incremental.assignment s,
    Incremental.pattern s )

let run_batches ~batch_edits ~seed ~max_domains =
  let nl = (Suite.find batch_circuit).Suite.build () in
  let lib = Library.create ~device:Params.d25 ~temp:300.0 () in
  let rng = Rng.create seed in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  let stream = List.init batch_edits (fun _ -> Edit.random_resize rng nl) in
  let reps = 24 in
  (* Every configuration replays the identical op sequence — warm-up batch,
     rollback, then [reps] timed batches each rolled back — so the final
     fingerprints are comparable float for float. Rollbacks are untimed:
     undo is per-edit and pool-independent by design. *)
  let run_config pool =
    let s = Incremental.create ~refresh_every:0 lib nl pattern in
    let cp = Incremental.checkpoint s in
    Incremental.apply_batch ?pool s stream;
    let fp = batch_fingerprint s in
    let groups = (Incremental.stats s).Incremental.batch_groups in
    Incremental.rollback s cp;
    let t = ref 0.0 in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      Incremental.apply_batch ?pool s stream;
      t := !t +. (Unix.gettimeofday () -. t0);
      Incremental.rollback s cp
    done;
    (fp, groups, !t /. float_of_int reps *. 1e6)
  in
  let fp_seq, groups, seq_us = run_config None in
  let base =
    { b_domains = 0; b_groups = groups; b_us = seq_us; b_speedup = 1.0;
      b_identical = true }
  in
  let pooled =
    List.filter_map
      (fun d ->
        if d > max_domains then None
        else
          Some
            (Pool.with_pool ~jobs:d (fun pool ->
                 let fp, g, us = run_config (Some pool) in
                 { b_domains = d; b_groups = g; b_us = us;
                   b_speedup = seq_us /. us;
                   b_identical = Stdlib.compare fp fp_seq = 0 })))
      batch_pool_sizes
  in
  base :: pooled

(* ---------------------------------------------------- value-aware pruning *)

type pruning_row = {
  p_stages : int;
  p_tap_every : int;
  p_edits : int;
  p_structural_groups : int;
  p_pruned_groups : int;
  p_struct_hist_count : int;
  p_struct_hist_sum : float;
  p_pruned_hist_count : int;
  p_pruned_hist_sum : float;
  p_identical : bool;
}

(* totals/baseline may differ between the pruned and unpruned batch in
   float association only (per-group vs per-cone accumulation order);
   everything per-net and per-gate must agree exactly *)
let components_close a b =
  let close x y =
    x = y || Float.abs (x -. y) <= 1e-9 *. Float.max (Float.abs x) (Float.abs y)
  in
  close a.Report.isub b.Report.isub
  && close a.Report.igate b.Report.igate
  && close a.Report.ibtbt b.Report.ibtbt

let run_pruning () =
  let stages = 4096 and tap_every = 64 in
  let nl = Trees.chain ~stages ~tap_every () in
  let lib = Library.create ~device:Params.d25 ~temp:300.0 () in
  (* all-zero pattern: every gateway tap carries the controlling 0, pinning
     the segment boundaries *)
  let pattern = Array.make (Array.length (Netlist.inputs nl)) Logic.Zero in
  (* retype one mid-segment inverter in every 8th segment: structurally each
     cone runs to the end of the chain, merging the whole batch into one
     group; with settled values the walk stops at the next pinned gateway *)
  let edits =
    List.init 8 (fun i ->
        Edit.Retype ((i * 8 * tap_every) + (tap_every / 2), Gate.Buf))
  in
  let arr = Array.of_list edits in
  let structural_groups = Array.length (Cone.Partition.groups nl arr) in
  let pruned = Incremental.create ~refresh_every:0 lib nl pattern in
  let pruned_groups = Array.length (Incremental.preview_groups pruned edits) in
  let before = Telemetry.Snapshot.take () in
  Incremental.apply_batch pruned edits;
  let after = Telemetry.Snapshot.take () in
  let unpruned = Incremental.create ~refresh_every:0 lib nl pattern in
  Incremental.apply_batch ~prune:false unpruned edits;
  let identical =
    let t1, b1, inj1, a1, p1 = batch_fingerprint pruned in
    let t2, b2, inj2, a2, p2 = batch_fingerprint unpruned in
    inj1 = inj2 && a1 = a2 && p1 = p2 && components_close t1 t2
    && components_close b1 b2
  in
  let dcount name =
    Telemetry.Snapshot.histogram_count after name
    - Telemetry.Snapshot.histogram_count before name
  in
  let dsum name =
    Telemetry.Snapshot.histogram_sum after name
    -. Telemetry.Snapshot.histogram_sum before name
  in
  {
    p_stages = stages;
    p_tap_every = tap_every;
    p_edits = List.length edits;
    p_structural_groups = structural_groups;
    p_pruned_groups = pruned_groups;
    p_struct_hist_count = dcount "incr.cone_struct_gates";
    p_struct_hist_sum = dsum "incr.cone_struct_gates";
    p_pruned_hist_count = dcount "incr.cone_pruned_gates";
    p_pruned_hist_sum = dsum "incr.cone_pruned_gates";
    p_identical = identical;
  }

(* ------------------------------------------------------------- JSON emit *)

(* Counters the run is expected to have exercised; -check asserts on them. *)
let metric_names =
  [ "incr.edits"; "incr.batches"; "incr.refreshes"; "library.misses";
    "dc.solves" ]

let emit_metrics oc =
  let p fmt = Printf.fprintf oc fmt in
  let snap = Telemetry.Snapshot.take () in
  p "  \"metrics\": {\n";
  List.iteri
    (fun i name ->
      p "    \"%s\": %d%s\n" name
        (Telemetry.Snapshot.counter_total snap name)
        (if i = List.length metric_names - 1 then "" else ","))
    metric_names;
  p "  }\n"

let emit oc ~edits ~seed ~batch_edits ~host_cores rows batch_rows pruning =
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"incremental\",\n";
  p "  \"edits\": %d,\n" edits;
  p "  \"seed\": %d,\n" seed;
  p "  \"host_cores\": %d,\n" host_cores;
  (* the fixed chunk widths the bit-identity contract depends on: a result
     is only comparable across builds that agree on these *)
  p "  \"avg_chunk\": %d,\n" Estimator.avg_chunk;
  p "  \"mc_chunk\": %d,\n" Vector_mc.mc_chunk;
  p "  \"circuits\": [\n";
  List.iteri
    (fun i r ->
      p "    {\n";
      p "      \"name\": \"%s\",\n" r.name;
      p "      \"gates\": %d,\n" r.gates;
      p "      \"full_us\": %.3f,\n" r.full_us;
      p "      \"incr_us\": %.3f,\n" r.incr_us;
      p "      \"speedup\": %.3f,\n" r.speedup;
      p "      \"rel_error\": %.3e,\n" r.rel_error;
      p "      \"logic_evals_per_edit\": %.3f,\n" r.logic_evals_per_edit;
      p "      \"lookups_per_edit\": %.3f,\n" r.lookups_per_edit;
      p "      \"refreshes\": %d\n" r.refreshes;
      p "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p "  \"batch_circuit\": \"%s\",\n" batch_circuit;
  p "  \"batch_edits\": %d,\n" batch_edits;
  p "  \"batches\": [\n";
  List.iteri
    (fun i (b : batch_row) ->
      p "    {\n";
      p "      \"domains\": %d,\n" b.b_domains;
      p "      \"groups\": %d,\n" b.b_groups;
      p "      \"us_per_batch\": %.3f,\n" b.b_us;
      p "      \"speedup\": %.3f,\n" b.b_speedup;
      p "      \"bit_identical\": %b\n" b.b_identical;
      p "    }%s\n" (if i = List.length batch_rows - 1 then "" else ","))
    batch_rows;
  p "  ],\n";
  p "  \"pruning_stages\": %d,\n" pruning.p_stages;
  p "  \"pruning_tap_every\": %d,\n" pruning.p_tap_every;
  p "  \"pruning_edits\": %d,\n" pruning.p_edits;
  p "  \"pruning_structural_groups\": %d,\n" pruning.p_structural_groups;
  p "  \"pruning_pruned_groups\": %d,\n" pruning.p_pruned_groups;
  p "  \"pruning_struct_hist_count\": %d,\n" pruning.p_struct_hist_count;
  p "  \"pruning_struct_hist_sum\": %.17g,\n" pruning.p_struct_hist_sum;
  p "  \"pruning_pruned_hist_count\": %d,\n" pruning.p_pruned_hist_count;
  p "  \"pruning_pruned_hist_sum\": %.17g,\n" pruning.p_pruned_hist_sum;
  p "  \"pruning_bit_identical\": %b,\n" pruning.p_identical;
  emit_metrics oc;
  p "}\n"

(* ------------------------------------------------------ minimal JSON read *)

(* Just enough parsing to validate the file this program writes: find a key
   inside a chunk and read the scalar after the colon. *)

let find_key chunk key =
  let needle = "\"" ^ key ^ "\":" in
  let nl = String.length needle and cl = String.length chunk in
  let rec scan i =
    if i + nl > cl then None
    else if String.sub chunk i nl = needle then Some (i + nl)
    else scan (i + 1)
  in
  scan 0

let scalar_after chunk pos =
  let cl = String.length chunk in
  let rec skip i = if i < cl && chunk.[i] = ' ' then skip (i + 1) else i in
  let start = skip pos in
  let rec stop i =
    if i >= cl then i
    else match chunk.[i] with ',' | '}' | ']' | '\n' -> i | _ -> stop (i + 1)
  in
  String.trim (String.sub chunk start (stop start - start))

let num_field chunk key =
  match find_key chunk key with
  | None -> failwith (Printf.sprintf "missing numeric field %S" key)
  | Some pos -> (
    match float_of_string_opt (scalar_after chunk pos) with
    | Some f -> f
    | None -> failwith (Printf.sprintf "field %S is not a number" key))

let str_field chunk key =
  match find_key chunk key with
  | None -> failwith (Printf.sprintf "missing string field %S" key)
  | Some pos ->
    let s = scalar_after chunk pos in
    if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"'
    then String.sub s 1 (String.length s - 2)
    else failwith (Printf.sprintf "field %S is not a string" key)

let bool_field chunk key =
  match find_key chunk key with
  | None -> failwith (Printf.sprintf "missing boolean field %S" key)
  | Some pos -> (
    match scalar_after chunk pos with
    | "true" -> true
    | "false" -> false
    | other -> failwith (Printf.sprintf "field %S is not a boolean: %s" key other))

(* split the array under [key] into one chunk per "{ ... }" object,
   stopping at the array's closing bracket *)
let array_chunks s key =
  match find_key s key with
  | None -> failwith (Printf.sprintf "missing %S array" key)
  | Some pos ->
    let cl = String.length s in
    let chunks = ref [] in
    let depth = ref 0 and start = ref (-1) and i = ref pos in
    let stop = ref false in
    while (not !stop) && !i < cl do
      (match s.[!i] with
       | '{' ->
         if !depth = 0 then start := !i;
         incr depth
       | '}' ->
         decr depth;
         if !depth = 0 && !start >= 0 then
           chunks := String.sub s !start (!i - !start + 1) :: !chunks
       | ']' -> if !depth = 0 then stop := true
       | _ -> ());
      incr i
    done;
    List.rev !chunks

let circuit_chunks s = array_chunks s "circuits"

let check path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  if str_field s "benchmark" <> "incremental" then
    failwith "benchmark field is not \"incremental\"";
  if num_field s "edits" <= 0.0 then failwith "edits must be positive";
  let host_cores = int_of_float (num_field s "host_cores") in
  if host_cores < 1 then failwith "host_cores must be >= 1";
  (* stale chunk constants would invalidate every bit-identity claim below *)
  let chunk_const key expected =
    let v = int_of_float (num_field s key) in
    if v <> expected then
      failwith
        (Printf.sprintf "%S is %d but this build uses %d — regenerate" key v
           expected)
  in
  chunk_const "avg_chunk" Estimator.avg_chunk;
  chunk_const "mc_chunk" Vector_mc.mc_chunk;
  let chunks = circuit_chunks s in
  let seen =
    List.map
      (fun chunk ->
        let name = str_field chunk "name" in
        let ok_positive key =
          if num_field chunk key <= 0.0 then
            failwith (Printf.sprintf "%s: %S must be positive" name key)
        in
        ok_positive "gates";
        ok_positive "full_us";
        ok_positive "incr_us";
        ok_positive "speedup";
        let rel = num_field chunk "rel_error" in
        if not (rel >= 0.0 && rel < 1e-9) then
          failwith
            (Printf.sprintf "%s: rel_error %.3e out of bounds [0, 1e-9)" name
               rel);
        ignore (num_field chunk "logic_evals_per_edit");
        ignore (num_field chunk "lookups_per_edit");
        name)
      chunks
  in
  List.iter
    (fun c ->
      if not (List.mem c seen) then
        failwith (Printf.sprintf "circuit %S missing from results" c))
    circuits;
  (* grouped-batch scenario: determinism unconditionally, throughput only
     for pool sizes the recorded host could actually run in parallel *)
  if str_field s "batch_circuit" <> batch_circuit then
    failwith (Printf.sprintf "batch_circuit is not %S" batch_circuit);
  let batch_edits = int_of_float (num_field s "batch_edits") in
  if batch_edits < 64 then
    failwith
      (Printf.sprintf "batch_edits %d < 64: too small to exercise grouping"
         batch_edits);
  let batch_chunks = array_chunks s "batches" in
  if batch_chunks = [] then failwith "empty \"batches\" array";
  let seq_groups = ref (-1) in
  List.iter
    (fun chunk ->
      let domains = int_of_float (num_field chunk "domains") in
      let tag = Printf.sprintf "batch@%dd" domains in
      let groups = int_of_float (num_field chunk "groups") in
      if groups < 1 || groups > batch_edits then
        failwith (Printf.sprintf "%s: groups %d out of [1, %d]" tag groups
                    batch_edits);
      (* the partition is a function of netlist and batch alone *)
      if !seq_groups < 0 then seq_groups := groups
      else if groups <> !seq_groups then
        failwith (Printf.sprintf "%s: groups %d differ from sequential %d"
                    tag groups !seq_groups);
      if num_field chunk "us_per_batch" <= 0.0 then
        failwith (tag ^ ": \"us_per_batch\" must be positive");
      if not (bool_field chunk "bit_identical") then
        failwith (tag ^ ": pooled batch state differs from sequential");
      let speedup = num_field chunk "speedup" in
      if speedup <= 0.0 then failwith (tag ^ ": \"speedup\" must be positive");
      if domains >= 2 && domains <= host_cores && speedup < 1.0 then
        failwith
          (Printf.sprintf "%s: speedup %.3f < 1.0 on a %d-core host" tag
             speedup host_cores);
      if domains = 4 && host_cores >= 8 && speedup < 1.5 then
        failwith
          (Printf.sprintf
             "%s: speedup %.3f < 1.5 at 4 domains on a %d-core host" tag
             speedup host_cores))
    batch_chunks;
  (* value-aware pruning scenario: the pruned partition must expose strictly
     more (hence smaller) groups than the structural one, with bit-identical
     results, and the cone-size histograms must show the shrink *)
  let p_struct = int_of_float (num_field s "pruning_structural_groups") in
  let p_pruned = int_of_float (num_field s "pruning_pruned_groups") in
  if p_struct < 1 then failwith "pruning_structural_groups must be >= 1";
  if p_pruned <= p_struct then
    failwith
      (Printf.sprintf
         "pruning: %d pruned groups not more than %d structural groups"
         p_pruned p_struct);
  if not (bool_field s "pruning_bit_identical") then
    failwith "pruning: pruned batch state differs from unpruned";
  let p_edits = int_of_float (num_field s "pruning_edits") in
  let hist_count key =
    let n = int_of_float (num_field s key) in
    if n < p_edits then
      failwith
        (Printf.sprintf "%s is %d: expected one observation per edit (%d)" key
           n p_edits);
    n
  in
  ignore (hist_count "pruning_struct_hist_count");
  ignore (hist_count "pruning_pruned_hist_count");
  if num_field s "pruning_pruned_hist_sum"
     >= num_field s "pruning_struct_hist_sum"
  then failwith "pruning: pruned cones are not smaller than structural cones";
  (* the embedded telemetry summary: every expected counter present, and
     the edit / batch paths actually fired during the run *)
  let metric key = int_of_float (num_field s key) in
  List.iter (fun name -> ignore (metric name)) metric_names;
  if metric "incr.edits" < 1 then
    failwith "metrics: \"incr.edits\" must be >= 1 (edits recorded)";
  if metric "incr.batches" < 1 then
    failwith "metrics: \"incr.batches\" must be >= 1 (batch path recorded)";
  if metric "dc.solves" < 1 then
    failwith "metrics: \"dc.solves\" must be >= 1 (characterization ran)";
  Printf.printf "%s OK (%d circuits, %d batch rows)\n" path (List.length seen)
    (List.length batch_chunks)

let () =
  let out = ref "BENCH_incremental.json" in
  let edits = ref 1000 in
  let batch_edits = ref 64 in
  let max_domains = ref 8 in
  let seed = ref 1 in
  let check_path = ref "" in
  Arg.parse
    [
      ("-o", Arg.Set_string out, "FILE output path (default BENCH_incremental.json)");
      ("-edits", Arg.Set_int edits, "N random resize edits per circuit (default 1000)");
      ("-batch-edits", Arg.Set_int batch_edits,
       "N resize edits per grouped batch (default 64)");
      ("-domains", Arg.Set_int max_domains,
       "N largest batch pool size to measure, of 1/2/4/8 (default 8)");
      ("-seed", Arg.Set_int seed, "N PRNG seed (default 1)");
      ("-check", Arg.Set_string check_path, "FILE validate an existing JSON file and exit");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "incremental re-estimation benchmark";
  if !check_path <> "" then
    match check !check_path with
    | () -> ()
    | exception Failure m ->
      Printf.eprintf "%s: INVALID: %s\n" !check_path m;
      exit 1
  else begin
    let host_cores = Domain.recommended_domain_count () in
    (* metrics ride along in the artifact; recording never changes results
       (the bit_identical batch rows double as proof) *)
    Telemetry.set_enabled true;
    let rows = List.map (run_circuit ~edits:!edits ~seed:!seed) circuits in
    let batch_rows =
      run_batches ~batch_edits:!batch_edits ~seed:!seed
        ~max_domains:!max_domains
    in
    let pruning = run_pruning () in
    let oc = open_out !out in
    emit oc ~edits:!edits ~seed:!seed ~batch_edits:!batch_edits ~host_cores
      rows batch_rows pruning;
    close_out oc;
    List.iter
      (fun r ->
        Printf.printf
          "%-8s %4d gates  full %8.1f us  incr %7.1f us  speedup %6.1fx  rel %.1e\n"
          r.name r.gates r.full_us r.incr_us r.speedup r.rel_error)
      rows;
    List.iter
      (fun (b : batch_row) ->
        Printf.printf
          "%-8s batch %3d edits  %d group%s  %s  %8.1f us  speedup %5.2fx  identical %b\n"
          batch_circuit !batch_edits b.b_groups
          (if b.b_groups = 1 then " " else "s")
          (if b.b_domains = 0 then "sequential"
           else if b.b_domains = 1 then "1 domain  "
           else Printf.sprintf "%d domains " b.b_domains)
          b.b_us b.b_speedup b.b_identical)
      batch_rows;
    Printf.printf
      "chain%d   pruning %d edits  structural %d group%s -> pruned %d groups  \
       cone gates %.0f -> %.0f  identical %b\n"
      pruning.p_stages pruning.p_edits pruning.p_structural_groups
      (if pruning.p_structural_groups = 1 then "" else "s")
      pruning.p_pruned_groups pruning.p_struct_hist_sum
      pruning.p_pruned_hist_sum pruning.p_identical
  end
