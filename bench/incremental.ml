(* Incremental-vs-full re-estimation benchmark.

   Applies a stream of random single-gate resize edits to Mult8 and Alu8
   through an Incremental session and compares the per-edit cost against a
   full Fig-13 estimate of the same state, emitting the result as
   BENCH_incremental.json. A warm-up pass runs the same edit stream first so
   first-touch cell characterizations (shared library cache) are excluded
   from both sides of the comparison.

     incremental.exe [-o FILE] [-edits N] [-seed N]   write the JSON
     incremental.exe -check FILE                      validate a JSON file *)

module Params = Leakage_device.Params
module Netlist = Leakage_circuit.Netlist
module Simulate = Leakage_circuit.Simulate
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Incremental = Leakage_incremental.Incremental
module Edit = Leakage_incremental.Edit
module Suite = Leakage_benchmarks.Suite
module Rng = Leakage_numeric.Rng

let circuits = [ "mult88"; "alu88" ]

type row = {
  name : string;
  gates : int;
  full_us : float;
  incr_us : float;
  speedup : float;
  rel_error : float;
  logic_evals_per_edit : float;
  lookups_per_edit : float;
  refreshes : int;
}

let run_circuit ~edits ~seed name =
  let nl = (Suite.find name).Suite.build () in
  let lib = Library.create ~device:Params.d25 ~temp:300.0 () in
  let rng = Rng.create seed in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  let stream = Array.init edits (fun _ -> Edit.random_resize rng nl) in
  (* warm-up: populate the characterization cache along the edit stream *)
  let warm = Incremental.create lib nl pattern in
  Array.iter (Incremental.apply warm) stream;
  (* timed incremental pass on a fresh session *)
  let session = Incremental.create lib nl pattern in
  let t0 = Unix.gettimeofday () in
  Array.iter (Incremental.apply session) stream;
  let incr_us = (Unix.gettimeofday () -. t0) /. float_of_int edits *. 1e6 in
  (* timed full estimates of the same final state *)
  let nl' = Incremental.current_netlist session in
  let p' = Incremental.pattern session in
  let reps = Stdlib.min edits 50 in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Estimator.estimate lib nl' p')
  done;
  let full_us = (Unix.gettimeofday () -. t1) /. float_of_int reps *. 1e6 in
  let fresh = Estimator.estimate lib nl' p' in
  let rel_error =
    let a = Report.total (Incremental.totals session)
    and b = Report.total fresh.Estimator.totals in
    Float.abs (a -. b) /. Float.abs b
  in
  let st = Incremental.stats session in
  {
    name;
    gates = Netlist.gate_count nl;
    full_us;
    incr_us;
    speedup = full_us /. incr_us;
    rel_error;
    logic_evals_per_edit =
      float_of_int st.Incremental.logic_evals /. float_of_int edits;
    lookups_per_edit =
      float_of_int st.Incremental.leakage_lookups /. float_of_int edits;
    refreshes = st.Incremental.refreshes;
  }

(* ------------------------------------------------------------- JSON emit *)

let emit oc ~edits ~seed rows =
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"incremental\",\n";
  p "  \"edits\": %d,\n" edits;
  p "  \"seed\": %d,\n" seed;
  p "  \"circuits\": [\n";
  List.iteri
    (fun i r ->
      p "    {\n";
      p "      \"name\": \"%s\",\n" r.name;
      p "      \"gates\": %d,\n" r.gates;
      p "      \"full_us\": %.3f,\n" r.full_us;
      p "      \"incr_us\": %.3f,\n" r.incr_us;
      p "      \"speedup\": %.3f,\n" r.speedup;
      p "      \"rel_error\": %.3e,\n" r.rel_error;
      p "      \"logic_evals_per_edit\": %.3f,\n" r.logic_evals_per_edit;
      p "      \"lookups_per_edit\": %.3f,\n" r.lookups_per_edit;
      p "      \"refreshes\": %d\n" r.refreshes;
      p "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n"

(* ------------------------------------------------------ minimal JSON read *)

(* Just enough parsing to validate the file this program writes: find a key
   inside a chunk and read the scalar after the colon. *)

let find_key chunk key =
  let needle = "\"" ^ key ^ "\":" in
  let nl = String.length needle and cl = String.length chunk in
  let rec scan i =
    if i + nl > cl then None
    else if String.sub chunk i nl = needle then Some (i + nl)
    else scan (i + 1)
  in
  scan 0

let scalar_after chunk pos =
  let cl = String.length chunk in
  let rec skip i = if i < cl && chunk.[i] = ' ' then skip (i + 1) else i in
  let start = skip pos in
  let rec stop i =
    if i >= cl then i
    else match chunk.[i] with ',' | '}' | ']' | '\n' -> i | _ -> stop (i + 1)
  in
  String.trim (String.sub chunk start (stop start - start))

let num_field chunk key =
  match find_key chunk key with
  | None -> failwith (Printf.sprintf "missing numeric field %S" key)
  | Some pos -> (
    match float_of_string_opt (scalar_after chunk pos) with
    | Some f -> f
    | None -> failwith (Printf.sprintf "field %S is not a number" key))

let str_field chunk key =
  match find_key chunk key with
  | None -> failwith (Printf.sprintf "missing string field %S" key)
  | Some pos ->
    let s = scalar_after chunk pos in
    if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"'
    then String.sub s 1 (String.length s - 2)
    else failwith (Printf.sprintf "field %S is not a string" key)

(* split the circuits array into one chunk per "{ ... }" object *)
let circuit_chunks s =
  match find_key s "circuits" with
  | None -> failwith "missing \"circuits\" array"
  | Some pos ->
    let cl = String.length s in
    let chunks = ref [] in
    let depth = ref 0 and start = ref (-1) and i = ref pos in
    while !i < cl do
      (match s.[!i] with
       | '{' ->
         if !depth = 0 then start := !i;
         incr depth
       | '}' ->
         decr depth;
         if !depth = 0 && !start >= 0 then
           chunks := String.sub s !start (!i - !start + 1) :: !chunks
       | _ -> ());
      incr i
    done;
    List.rev !chunks

let check path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  if str_field s "benchmark" <> "incremental" then
    failwith "benchmark field is not \"incremental\"";
  if num_field s "edits" <= 0.0 then failwith "edits must be positive";
  let chunks = circuit_chunks s in
  let seen =
    List.map
      (fun chunk ->
        let name = str_field chunk "name" in
        let ok_positive key =
          if num_field chunk key <= 0.0 then
            failwith (Printf.sprintf "%s: %S must be positive" name key)
        in
        ok_positive "gates";
        ok_positive "full_us";
        ok_positive "incr_us";
        ok_positive "speedup";
        let rel = num_field chunk "rel_error" in
        if not (rel >= 0.0 && rel < 1e-9) then
          failwith
            (Printf.sprintf "%s: rel_error %.3e out of bounds [0, 1e-9)" name
               rel);
        ignore (num_field chunk "logic_evals_per_edit");
        ignore (num_field chunk "lookups_per_edit");
        name)
      chunks
  in
  List.iter
    (fun c ->
      if not (List.mem c seen) then
        failwith (Printf.sprintf "circuit %S missing from results" c))
    circuits;
  Printf.printf "%s OK (%d circuits)\n" path (List.length seen)

let () =
  let out = ref "BENCH_incremental.json" in
  let edits = ref 1000 in
  let seed = ref 1 in
  let check_path = ref "" in
  Arg.parse
    [
      ("-o", Arg.Set_string out, "FILE output path (default BENCH_incremental.json)");
      ("-edits", Arg.Set_int edits, "N random resize edits per circuit (default 1000)");
      ("-seed", Arg.Set_int seed, "N PRNG seed (default 1)");
      ("-check", Arg.Set_string check_path, "FILE validate an existing JSON file and exit");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "incremental re-estimation benchmark";
  if !check_path <> "" then
    match check !check_path with
    | () -> ()
    | exception Failure m ->
      Printf.eprintf "%s: INVALID: %s\n" !check_path m;
      exit 1
  else begin
    let rows = List.map (run_circuit ~edits:!edits ~seed:!seed) circuits in
    let oc = open_out !out in
    emit oc ~edits:!edits ~seed:!seed rows;
    close_out oc;
    List.iter
      (fun r ->
        Printf.printf
          "%-8s %4d gates  full %8.1f us  incr %7.1f us  speedup %6.1fx  rel %.1e\n"
          r.name r.gates r.full_us r.incr_us r.speedup r.rel_error)
      rows
  end
